// Package stats is the simulator's metrics registry: named counters,
// gauges, and histograms that the pipeline, translation devices, and
// caches record fine-grained events into (TLB-port queue depths,
// translation-latency distributions, squash and replay counts, fetch
// stall causes). Aggregate end-of-run numbers live in cpu.Stats and
// tlb.Stats; this package holds the distributions and event streams
// that turn those aggregates into an oracle tests can assert on, and
// that the harness exports as JSON/CSV.
//
// A Registry belongs to one simulated machine and is not safe for
// concurrent use — the harness runs machines in parallel, but each owns
// its registry exclusively, which keeps the hot increment paths free of
// synchronization. Cross-run aggregation (the /metrics endpoint of
// internal/obs) therefore never reads a live machine's registry:
// the sweep engine folds each completed run's Snapshot into a private
// aggregate registry under its own lock (Registry.Merge), and scrapes
// read only that aggregate.
package stats

import (
	"fmt"
	"io"
	"sort"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	v    uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Set overwrites the count (used when mirroring an externally
// maintained aggregate into the registry at end of run).
func (c *Counter) Set(n uint64) { c.v = n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is an instantaneous level (queue depth, occupancy). It tracks
// the maximum level seen alongside the current value.
type Gauge struct {
	name string
	v    int64
	max  int64
}

// Set records the current level.
func (g *Gauge) Set(v int64) {
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Value returns the most recently set level.
func (g *Gauge) Value() int64 { return g.v }

// Max returns the highest level ever set.
func (g *Gauge) Max() int64 { return g.max }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Histogram is a distribution over int64 samples with explicit bucket
// upper bounds: sample v falls in the first bucket with v <= bound; an
// implicit overflow bucket catches the rest.
type Histogram struct {
	name   string
	bounds []int64  // ascending upper bounds
	counts []uint64 // len(bounds)+1; last is overflow
	sum    int64
	n      uint64
	max    int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns how many samples were observed.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the total of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest sample (0 before any Observe).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the average sample (0 before any Observe).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Buckets returns the bucket bounds and counts (the final count is the
// overflow bucket, bound +inf).
func (h *Histogram) Buckets() (bounds []int64, counts []uint64) {
	return h.bounds, h.counts
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts: it returns the upper bound of the first bucket whose
// cumulative count reaches q of the samples, and the largest observed
// sample for quantiles landing in the overflow bucket. An empty
// histogram reports 0. The estimate is conservative (an upper bound on
// the true quantile within bucket resolution), which is the useful
// direction for latency reporting.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the q-quantile sample, 1-based and rounded up (the
	// conservative direction); q=0 means the first.
	rank := uint64(q * float64(h.n))
	if float64(rank) < q*float64(h.n) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max // overflow bucket: cap at the observed maximum
		}
	}
	return h.max
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// LinearBuckets returns n upper bounds start, start+step, ...
func LinearBuckets(start, step int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)*step
	}
	return out
}

// ExpBuckets returns n upper bounds start, start*factor, ... (factor
// must be >= 2 to guarantee strictly increasing integer bounds).
func ExpBuckets(start, factor int64, n int) []int64 {
	out := make([]int64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// Registry is an ordered collection of named metrics. Lookups by name
// return the existing metric, so call sites may re-request handles
// cheaply; names must not collide across metric kinds.
type Registry struct {
	order      []string
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

func (r *Registry) claim(name string) {
	if _, dup := r.counters[name]; dup {
		panic(fmt.Sprintf("stats: %q already registered as a counter", name))
	}
	if _, dup := r.gauges[name]; dup {
		panic(fmt.Sprintf("stats: %q already registered as a gauge", name))
	}
	if _, dup := r.histograms[name]; dup {
		panic(fmt.Sprintf("stats: %q already registered as a histogram", name))
	}
	r.order = append(r.order, name)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.claim(name)
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.claim(name)
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given bucket upper bounds (ignored when it already exists).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if h, ok := r.histograms[name]; ok {
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: %q bucket bounds not ascending: %v", name, bounds))
		}
	}
	r.claim(name)
	h := &Histogram{
		name:   name,
		bounds: append([]int64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// Merge folds a snapshot into the registry, creating metrics on first
// sight: counters add their values, gauges take the incoming level and
// the maximum of the two maxima, and histograms add bucket-wise. A
// histogram whose bucket bounds differ from the already-registered ones
// folds its samples into the overflow bucket instead, so the bucket
// totals always still equal the count (the invariant the Prometheus
// exposition relies on).
//
// Merge is how per-run registries become a live aggregate without
// locking the hot increment paths: each machine owns its registry
// exclusively during the run, and the sweep engine merges the finished
// run's Snapshot under the engine lock.
func (r *Registry) Merge(s Snapshot) {
	for _, m := range s {
		switch m.Kind {
		case "counter":
			r.Counter(m.Name).Add(m.Value)
		case "gauge":
			g := r.Gauge(m.Name)
			g.Set(m.Level)
			if m.Max > g.max {
				g.max = m.Max
			}
		case "histogram":
			h := r.Histogram(m.Name, m.Bounds)
			if boundsEqual(h.bounds, m.Bounds) && len(m.Buckets) == len(h.counts) {
				for i, c := range m.Buckets {
					h.counts[i] += c
				}
			} else {
				h.counts[len(h.counts)-1] += m.Count
			}
			h.n += m.Count
			h.sum += m.Sum
			if m.Max > h.max {
				h.max = m.Max
			}
		}
	}
}

func boundsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Metric is one exported metric in a Snapshot. Exactly one of the
// kind-specific groups is meaningful, selected by Kind.
type Metric struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter", "gauge", or "histogram"

	// Counter.
	Value uint64 `json:"value,omitempty"`

	// Gauge.
	Level int64 `json:"level,omitempty"`

	// Gauge and histogram.
	Max int64 `json:"max,omitempty"`

	// Histogram.
	Count   uint64   `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Mean    float64  `json:"mean,omitempty"`
	Bounds  []int64  `json:"bounds,omitempty"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, ordered by name.
type Snapshot []Metric

// Snapshot copies every metric's current state, sorted by name so the
// export is stable regardless of registration order.
func (r *Registry) Snapshot() Snapshot {
	out := make(Snapshot, 0, len(r.order))
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	for _, name := range names {
		switch {
		case r.counters[name] != nil:
			c := r.counters[name]
			out = append(out, Metric{Name: name, Kind: "counter", Value: c.v})
		case r.gauges[name] != nil:
			g := r.gauges[name]
			out = append(out, Metric{Name: name, Kind: "gauge", Level: g.v, Max: g.max})
		case r.histograms[name] != nil:
			h := r.histograms[name]
			out = append(out, Metric{
				Name: name, Kind: "histogram",
				Count: h.n, Sum: h.sum, Mean: h.Mean(), Max: h.max,
				Bounds:  append([]int64(nil), h.bounds...),
				Buckets: append([]uint64(nil), h.counts...),
			})
		}
	}
	return out
}

// Get returns the named metric from the snapshot.
func (s Snapshot) Get(name string) (Metric, bool) {
	for _, m := range s {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// CounterValue returns the named counter's value (0 when absent — the
// convenient form for test assertions).
func (s Snapshot) CounterValue(name string) uint64 {
	m, _ := s.Get(name)
	return m.Value
}

// WriteJSON writes the snapshot as a JSON array. The encoding is
// hand-rolled (ordered, no reflection) so exports are byte-stable for
// golden files.
func (s Snapshot) WriteJSON(w io.Writer) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, m := range s {
		sep := ","
		if i == len(s)-1 {
			sep = ""
		}
		var err error
		switch m.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "  {\"name\":%q,\"kind\":\"counter\",\"value\":%d}%s\n", m.Name, m.Value, sep)
		case "gauge":
			_, err = fmt.Fprintf(w, "  {\"name\":%q,\"kind\":\"gauge\",\"level\":%d,\"max\":%d}%s\n", m.Name, m.Level, m.Max, sep)
		default:
			_, err = fmt.Fprintf(w, "  {\"name\":%q,\"kind\":\"histogram\",\"count\":%d,\"sum\":%d,\"mean\":%.6f,\"max\":%d,\"bounds\":%s,\"buckets\":%s}%s\n",
				m.Name, m.Count, m.Sum, m.Mean, m.Max, jsonInts(m.Bounds), jsonUints(m.Buckets), sep)
		}
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// WriteCSV writes the snapshot as name,kind,value rows; histograms emit
// one summary row plus one row per bucket (name suffixed with "le_N" or
// "le_inf").
func (s Snapshot) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "name,kind,value\n"); err != nil {
		return err
	}
	for _, m := range s {
		var err error
		switch m.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "%s,counter,%d\n", m.Name, m.Value)
		case "gauge":
			_, err = fmt.Fprintf(w, "%s,gauge,%d\n%s.max,gauge,%d\n", m.Name, m.Level, m.Name, m.Max)
		default:
			if _, err = fmt.Fprintf(w, "%s.count,histogram,%d\n%s.sum,histogram,%d\n%s.max,histogram,%d\n",
				m.Name, m.Count, m.Name, m.Sum, m.Name, m.Max); err != nil {
				return err
			}
			for i, c := range m.Buckets {
				bound := "inf"
				if i < len(m.Bounds) {
					bound = fmt.Sprint(m.Bounds[i])
				}
				if _, err = fmt.Fprintf(w, "%s.le_%s,histogram,%d\n", m.Name, bound, c); err != nil {
					return err
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func jsonInts(v []int64) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(x)
	}
	return s + "]"
}

func jsonUints(v []uint64) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(x)
	}
	return s + "]"
}
