package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cpu.squashes")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("cpu.squashes") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("rob.depth")
	g.Set(7)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 7 {
		t.Fatalf("gauge = %d max %d", g.Value(), g.Max())
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{0, 1, 3, 7})
	for _, v := range []int64{0, 0, 1, 2, 3, 5, 9, 100} {
		h.Observe(v)
	}
	_, counts := h.Buckets()
	want := []uint64{2, 1, 2, 1, 2} // le0, le1, le3, le7, overflow
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Count() != 8 || h.Sum() != 120 || h.Max() != 100 {
		t.Fatalf("count %d sum %d max %d", h.Count(), h.Sum(), h.Max())
	}
	if h.Mean() != 15 {
		t.Fatalf("mean %f", h.Mean())
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 2, 4)
	for i, want := range []int64{0, 2, 4, 6} {
		if lin[i] != want {
			t.Fatalf("linear %v", lin)
		}
	}
	exp := ExpBuckets(1, 2, 5)
	for i, want := range []int64{1, 2, 4, 8, 16} {
		if exp[i] != want {
			t.Fatalf("exp %v", exp)
		}
	}
}

func TestNameCollisionAcrossKindsPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind collision")
		}
	}()
	r.Gauge("x")
}

func TestSnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("zebra").Add(1)
	r.Gauge("alpha").Set(2)
	r.Histogram("mid", []int64{1}).Observe(5)
	s := r.Snapshot()
	if len(s) != 3 {
		t.Fatalf("snapshot len %d", len(s))
	}
	for i, want := range []string{"alpha", "mid", "zebra"} {
		if s[i].Name != want {
			t.Fatalf("order %v", s)
		}
	}
	if v := s.CounterValue("zebra"); v != 1 {
		t.Fatalf("zebra = %d", v)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("found a metric that does not exist")
	}
}

func TestWriteJSONIsValidJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(-2)
	h := r.Histogram("c", []int64{0, 4})
	h.Observe(2)
	h.Observe(9)

	var sb strings.Builder
	if err := r.Snapshot().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(decoded) != 3 {
		t.Fatalf("decoded %d metrics", len(decoded))
	}
	if decoded[0]["name"] != "a" || decoded[0]["value"] != float64(3) {
		t.Fatalf("counter row %v", decoded[0])
	}
	if decoded[2]["count"] != float64(2) {
		t.Fatalf("histogram row %v", decoded[2])
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(7)
	h := r.Histogram("lat", []int64{1})
	h.Observe(0)
	h.Observe(5)

	var sb strings.Builder
	if err := r.Snapshot().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"name,kind,value\n",
		"hits,counter,7\n",
		"lat.count,histogram,2\n",
		"lat.le_1,histogram,1\n",
		"lat.le_inf,histogram,1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}
