package store

// The fleet coordinator's store tier is a read-through cache over the
// workers: an artifact the coordinator has not filed locally yet can
// still be served by fetching it from whichever worker computed it —
// exactly once, verified against the expected content hash before it
// is admitted. The Filler here is that read-through layer; the
// coordinator records each spec's expected SHA-256 at completion time
// and the Filler refuses any fetched bytes that do not hash to it, so
// a worker (or the network) corrupting a result can never poison the
// coordinator's content-addressed store.

import (
	"context"
	"fmt"
	"sync"
)

// Fetch retrieves the artifact bytes for key from a remote source. It
// is called at most once per key per miss wave (concurrent misses on
// one key collapse into a single flight).
type Fetch func(ctx context.Context, key string) ([]byte, error)

// Filler is a read-through layer over a Store: Get serves local hits
// directly and fills misses through a Fetch, verifying fetched bytes
// against the expected content hash before filing them. Safe for
// concurrent use.
type Filler struct {
	// Store is the backing store; required.
	Store *Store
	// Fetch retrieves missing artifacts; required for fills. With a nil
	// Fetch the Filler degrades to plain Store reads.
	Fetch Fetch
	// Tenant attributes filled artifacts in the backing store;
	// "default" when empty.
	Tenant string

	mu       sync.Mutex
	expected map[string]string // key -> required SHA-256 hex
	inflight map[string]*flight
}

// flight is one in-progress fill; later arrivals wait on done.
type flight struct {
	done chan struct{}
	data []byte
	sha  string
	err  error
}

// Expect records the content hash an artifact must carry to be
// admitted by a future fill. A key with no expectation is fetched but
// only self-verified (the store still rejects malformed keys and
// hashes everything it admits).
func (f *Filler) Expect(key, sha string) {
	f.mu.Lock()
	if f.expected == nil {
		f.expected = make(map[string]string)
	}
	f.expected[key] = sha
	f.mu.Unlock()
}

// Get returns the artifact under key, fetching and filing it on a
// local miss. Concurrent misses on the same key share one fetch.
func (f *Filler) Get(ctx context.Context, key string) (data []byte, sha string, err error) {
	if data, sha, ok := f.Store.Get(key); ok {
		return data, sha, nil
	}
	if f.Fetch == nil {
		return nil, "", fmt.Errorf("store: no artifact for %s and no fetcher", key)
	}

	f.mu.Lock()
	if fl, ok := f.inflight[key]; ok {
		f.mu.Unlock()
		select {
		case <-fl.done:
			return fl.data, fl.sha, fl.err
		case <-ctx.Done():
			return nil, "", ctx.Err()
		}
	}
	if f.inflight == nil {
		f.inflight = make(map[string]*flight)
	}
	fl := &flight{done: make(chan struct{})}
	f.inflight[key] = fl
	want := f.expected[key]
	f.mu.Unlock()

	fl.data, fl.sha, fl.err = f.fill(ctx, key, want)
	f.mu.Lock()
	delete(f.inflight, key)
	f.mu.Unlock()
	close(fl.done)
	return fl.data, fl.sha, fl.err
}

// fill performs one verified fetch-and-file.
func (f *Filler) fill(ctx context.Context, key, want string) ([]byte, string, error) {
	data, err := f.Fetch(ctx, key)
	if err != nil {
		return nil, "", fmt.Errorf("store: fill %s: %w", key, err)
	}
	got := hash(data)
	if want != "" && got != want {
		return nil, "", fmt.Errorf("store: fill %s: fetched bytes hash %s, want %s (corrupt remote)", key, got[:12], want[:12])
	}
	tenant := f.Tenant
	if tenant == "" {
		tenant = "default"
	}
	sha, err := f.Store.Put(tenant, key, data)
	if err != nil {
		// ErrMismatch here means someone filed different bytes while we
		// fetched; serve what the store holds — it won the race.
		if d, s, ok := f.Store.Get(key); ok {
			return d, s, nil
		}
		return nil, "", fmt.Errorf("store: fill %s: %w", key, err)
	}
	return data, sha, nil
}
