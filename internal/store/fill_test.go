package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func fillKey(b byte) string {
	return strings.Repeat(hex.EncodeToString([]byte{b}), 8) // 16-hex key
}

func shaOf(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// TestFillerFetchOnce: concurrent misses on one key collapse into a
// single fetch, and the bytes land in the backing store.
func TestFillerFetchOnce(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	key, body := fillKey(0xaa), []byte(`{"fill":"once"}`)
	var fetches atomic.Int64
	f := &Filler{Store: s, Fetch: func(ctx context.Context, k string) ([]byte, error) {
		fetches.Add(1)
		if k != key {
			t.Errorf("fetched %s, want %s", k, key)
		}
		return body, nil
	}}
	f.Expect(key, shaOf(body))

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, sha, err := f.Get(context.Background(), key)
			if err != nil {
				t.Error(err)
				return
			}
			if string(data) != string(body) || sha != shaOf(body) {
				t.Errorf("got %q/%s", data, sha)
			}
		}()
	}
	wg.Wait()
	// All 8 callers raced one miss wave; at least one fetch happened and
	// far fewer than one per caller. The strict invariant — a key the
	// store now holds is never fetched again — is checked below.
	if n := fetches.Load(); n < 1 || n > 2 {
		t.Fatalf("fetches = %d, want 1 (maybe 2 under extreme interleaving)", n)
	}
	before := fetches.Load()
	if _, _, err := f.Get(context.Background(), key); err != nil {
		t.Fatal(err)
	}
	if fetches.Load() != before {
		t.Fatal("fetch-once violated: stored key was fetched again")
	}
	if _, _, ok := s.Get(key); !ok {
		t.Fatal("fill did not file the artifact into the backing store")
	}
}

// TestFillerRejectsCorrupt: fetched bytes that do not hash to the
// expectation are refused and nothing is filed.
func TestFillerRejectsCorrupt(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	key, body := fillKey(0xbb), []byte(`{"fill":"good"}`)
	f := &Filler{Store: s, Fetch: func(ctx context.Context, k string) ([]byte, error) {
		return []byte(`{"fill":"tampered"}`), nil
	}}
	f.Expect(key, shaOf(body))
	if _, _, err := f.Get(context.Background(), key); err == nil {
		t.Fatal("corrupt fill admitted")
	} else if !strings.Contains(err.Error(), "corrupt remote") {
		t.Fatalf("err = %v, want corrupt-remote", err)
	}
	if _, _, ok := s.Get(key); ok {
		t.Fatal("corrupt bytes were filed into the store")
	}
}

// TestFillerFetchError propagates and does not cache the failure: a
// later Get retries the fetch.
func TestFillerFetchError(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	key, body := fillKey(0xcc), []byte(`{"fill":"late"}`)
	var calls atomic.Int64
	f := &Filler{Store: s, Fetch: func(ctx context.Context, k string) ([]byte, error) {
		if calls.Add(1) == 1 {
			return nil, errors.New("worker gone")
		}
		return body, nil
	}}
	if _, _, err := f.Get(context.Background(), key); err == nil {
		t.Fatal("first fill should fail")
	}
	data, _, err := f.Get(context.Background(), key)
	if err != nil {
		t.Fatalf("retry fill: %v", err)
	}
	if string(data) != string(body) {
		t.Fatalf("retry served %q", data)
	}
}

// TestFillerNoFetcher degrades to plain store reads.
func TestFillerNoFetcher(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	key, body := fillKey(0xdd), []byte(`{"fill":"local"}`)
	if _, err := s.Put("default", key, body); err != nil {
		t.Fatal(err)
	}
	f := &Filler{Store: s}
	if data, _, err := f.Get(context.Background(), key); err != nil || string(data) != string(body) {
		t.Fatalf("local hit: %q, %v", data, err)
	}
	if _, _, err := f.Get(context.Background(), fillKey(0xde)); err == nil {
		t.Fatal("miss with no fetcher must error")
	}
}
