// Package store is the content-addressed result store of the sweep
// fabric: rendered artifacts keyed by spec fingerprint (the engine's
// RunSpec.Hash), verified by SHA-256, held in a bounded in-memory LRU
// over an optional disk layer, with per-tenant admission quotas.
//
// The store never trusts bytes it did not just hash: disk loads
// recompute the content hash and treat a mismatch as a miss (the
// corrupt file is deleted, the caller re-renders). Artifacts are
// immutable — a key maps to exactly one byte sequence, so a Put of
// different bytes under an existing key is rejected rather than
// silently replacing a served artifact.
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// ErrQuota is returned by Put when the writing tenant's attributed
// bytes would exceed the per-tenant quota. The caller maps it to HTTP
// 429.
var ErrQuota = errors.New("store: tenant quota exceeded")

// ErrMismatch is returned by Put when the key already holds different
// bytes — content-addressed entries are immutable.
var ErrMismatch = errors.New("store: key already holds different content")

// Config sizes a Store. Zero values mean: memory-only (no Dir),
// a 64 MiB memory layer, unlimited disk, unlimited tenants.
type Config struct {
	// Dir, when non-empty, is the disk layer: one file per artifact,
	// written atomically (temp + rename), carrying a self-describing
	// header (sha256 + owning tenant) over the raw bytes. An existing
	// directory is re-indexed on New, so a restarted service serves
	// its previous results without re-simulating.
	Dir string
	// MemBytes bounds the in-memory layer (artifact bytes, not index
	// overhead). Least-recently-used artifacts spill to disk-only; with
	// no Dir they are evicted entirely. <= 0 means the 64 MiB default.
	MemBytes int64
	// DiskBytes, when > 0, bounds the disk layer; least-recently-used
	// files are deleted once the total exceeds it.
	DiskBytes int64
	// TenantQuotaBytes, when > 0, bounds the live bytes attributed to
	// any one tenant (the tenant whose Put first stored the artifact).
	// Eviction refunds the owning tenant, so the quota bounds resident
	// footprint, not lifetime traffic.
	TenantQuotaBytes int64
}

// Stats is a point-in-time read of the store's counters.
type Stats struct {
	// MemHits/DiskHits/Misses classify Gets. A disk hit re-verifies
	// the content hash and promotes the artifact back into memory.
	MemHits, DiskHits, Misses uint64
	// Puts counts accepted writes; DupPuts counts Puts of bytes the
	// store already held (served as success without rewriting).
	Puts, DupPuts uint64
	// MemEvictions counts artifacts spilled out of the memory layer;
	// DiskEvictions counts files deleted by the disk budget.
	MemEvictions, DiskEvictions uint64
	// Corrupt counts disk loads whose content hash did not match.
	Corrupt uint64
	// Entries/MemBytes/DiskBytes describe current occupancy.
	Entries   int
	MemBytes  int64
	DiskBytes int64
}

// entry is one stored artifact. data is nil when the artifact has been
// spilled to disk-only; sha and size always describe the content.
type entry struct {
	key    string
	sha    string
	tenant string
	size   int64
	data   []byte
	// onDisk tracks whether the artifact file exists, so accounting
	// survives a failed write (memory-only entry in a disk-backed
	// store) and a disk eviction of a still-hot entry.
	onDisk bool
	elem   *list.Element
}

// Store is a bounded, content-verified artifact cache. Safe for
// concurrent use.
type Store struct {
	cfg Config

	mu      sync.Mutex
	entries map[string]*entry
	// lru orders entries most-recently-used first; spill and eviction
	// walk it from the back. One list covers both layers: an entry's
	// position reflects its last Get/Put regardless of where its bytes
	// live.
	lru       *list.List
	memBytes  int64
	diskBytes int64
	tenants   map[string]int64

	stats Stats
}

const defaultMemBytes = 64 << 20

// New opens a store. With cfg.Dir set, existing artifact files are
// indexed (header-only read) so previous results stay servable; files
// that fail to parse are deleted.
func New(cfg Config) (*Store, error) {
	if cfg.MemBytes <= 0 {
		cfg.MemBytes = defaultMemBytes
	}
	s := &Store{
		cfg:     cfg,
		entries: make(map[string]*entry),
		lru:     list.New(),
		tenants: make(map[string]int64),
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := s.reindex(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Key reports whether k looks like a spec fingerprint (lowercase hex),
// the only shape the store files under. Rejecting anything else keeps
// path traversal out of the disk layer.
func Key(k string) bool {
	if len(k) == 0 || len(k) > 64 {
		return false
	}
	for _, c := range k {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	return filepath.Join(s.cfg.Dir, key+".art")
}

// header is the first line of an artifact file: "sha256hex tenant\n".
// The raw artifact bytes follow, so the stored content hash covers
// exactly what Get returns.
func header(sha, tenant string) []byte {
	return []byte(sha + " " + tenant + "\n")
}

// parseFile splits an artifact file into header fields and content.
func parseFile(raw []byte) (sha, tenant string, data []byte, err error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return "", "", nil, errors.New("no header line")
	}
	fields := strings.Fields(string(raw[:nl]))
	if len(fields) != 2 || len(fields[0]) != 64 {
		return "", "", nil, errors.New("malformed header")
	}
	return fields[0], fields[1], raw[nl+1:], nil
}

// reindex scans the disk layer and rebuilds the index without loading
// artifact bytes into memory. Unparseable files are deleted.
func (s *Store) reindex() error {
	paths, err := filepath.Glob(filepath.Join(s.cfg.Dir, "*.art"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		key := strings.TrimSuffix(filepath.Base(p), ".art")
		sha, tenant, data, perr := parseFile(raw)
		if perr != nil || !Key(key) {
			os.Remove(p)
			continue
		}
		e := &entry{key: key, sha: sha, tenant: tenant, size: int64(len(data)), onDisk: true}
		e.elem = s.lru.PushBack(e)
		s.entries[key] = e
		s.diskBytes += e.size
		s.tenants[tenant] += e.size
	}
	return nil
}

// Get returns the artifact stored under key and its SHA-256 hex. A
// disk-only entry is verified against its recorded hash and promoted
// into the memory layer; a corrupt file is deleted and reported as a
// miss.
func (s *Store) Get(key string) (data []byte, sha string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, found := s.entries[key]
	if !found {
		s.stats.Misses++
		return nil, "", false
	}
	if e.data != nil {
		s.stats.MemHits++
		s.lru.MoveToFront(e.elem)
		return e.data, e.sha, true
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		s.dropLocked(e)
		s.stats.Misses++
		return nil, "", false
	}
	fsha, _, fdata, perr := parseFile(raw)
	if perr != nil || fsha != e.sha || hash(fdata) != e.sha {
		os.Remove(s.path(key))
		s.dropLocked(e)
		s.stats.Corrupt++
		s.stats.Misses++
		return nil, "", false
	}
	e.data = fdata
	s.memBytes += e.size
	s.lru.MoveToFront(e.elem)
	s.spillLocked()
	s.stats.DiskHits++
	return fdata, e.sha, true
}

// Put stores data under key, attributed to tenant, and returns the
// content's SHA-256 hex. Re-putting identical bytes is a cheap no-op;
// different bytes under an existing key return ErrMismatch; exceeding
// the tenant's quota returns ErrQuota before anything is written.
func (s *Store) Put(tenant, key string, data []byte) (string, error) {
	if !Key(key) {
		return "", fmt.Errorf("store: invalid key %q", key)
	}
	sha := hash(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, found := s.entries[key]; found {
		if e.sha != sha {
			return "", ErrMismatch
		}
		s.stats.DupPuts++
		s.lru.MoveToFront(e.elem)
		return sha, nil
	}
	size := int64(len(data))
	if q := s.cfg.TenantQuotaBytes; q > 0 && s.tenants[tenant]+size > q {
		return "", ErrQuota
	}
	e := &entry{key: key, sha: sha, tenant: tenant, size: size, data: data}
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	s.memBytes += size
	s.tenants[tenant] += size
	s.stats.Puts++
	if s.cfg.Dir != "" {
		if err := s.writeFile(key, sha, tenant, data); err != nil {
			// Disk failure degrades to memory-only for this artifact.
			s.stats.Corrupt++
		} else {
			e.onDisk = true
			s.diskBytes += size
			s.evictDiskLocked()
		}
	}
	s.spillLocked()
	return sha, nil
}

// writeFile persists one artifact atomically: temp file, fsync, rename.
func (s *Store) writeFile(key, sha, tenant string, data []byte) error {
	tmp, err := os.CreateTemp(s.cfg.Dir, key+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(header(sha, tenant)); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), s.path(key))
}

// spillLocked drops in-memory bytes (back of the LRU first) until the
// memory layer fits its budget. With a disk layer the bytes remain
// servable from disk; without one the entry is gone.
func (s *Store) spillLocked() {
	for el := s.lru.Back(); el != nil && s.memBytes > s.cfg.MemBytes; {
		e := el.Value.(*entry)
		el = el.Prev()
		if e.data == nil {
			continue
		}
		e.data = nil
		s.memBytes -= e.size
		s.stats.MemEvictions++
		if !e.onDisk {
			s.dropLocked(e)
		}
	}
}

// evictDiskLocked deletes least-recently-used files until the disk
// layer fits its budget.
func (s *Store) evictDiskLocked() {
	if s.cfg.DiskBytes <= 0 {
		return
	}
	for el := s.lru.Back(); el != nil && s.diskBytes > s.cfg.DiskBytes; {
		e := el.Value.(*entry)
		el = el.Prev()
		if !e.onDisk {
			continue
		}
		os.Remove(s.path(e.key))
		e.onDisk = false
		s.diskBytes -= e.size
		s.stats.DiskEvictions++
		if e.data == nil {
			s.dropLocked(e)
		}
	}
}

// dropLocked removes an entry entirely and refunds its tenant.
func (s *Store) dropLocked(e *entry) {
	if _, found := s.entries[e.key]; !found {
		return
	}
	delete(s.entries, e.key)
	s.lru.Remove(e.elem)
	if e.data != nil {
		s.memBytes -= e.size
	}
	if e.onDisk {
		e.onDisk = false
		s.diskBytes -= e.size
	}
	s.tenants[e.tenant] -= e.size
	if s.tenants[e.tenant] <= 0 {
		delete(s.tenants, e.tenant)
	}
}

// TenantUsage returns the live bytes attributed to tenant.
func (s *Store) TenantUsage(tenant string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenants[tenant]
}

// TenantQuota returns the configured per-tenant byte quota (0 means
// unlimited) — the denominator of a quota-utilization gauge.
func (s *Store) TenantQuota() int64 { return s.cfg.TenantQuotaBytes }

// Tenants returns a snapshot of live bytes per tenant — every tenant
// with attributed bytes, for quota-utilization gauges.
func (s *Store) Tenants() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.tenants))
	for t, b := range s.tenants {
		out[t] = b
	}
	return out
}

// Stats returns the store's counters and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.MemBytes = s.memBytes
	st.DiskBytes = s.diskBytes
	return st
}

// Keys returns every stored key, most recently used first.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.entries))
	for el := s.lru.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry).key)
	}
	return keys
}

func hash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
