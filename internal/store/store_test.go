package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("artifact body\n")
	sha, err := s.Put("alice", "ab12cd", data)
	if err != nil {
		t.Fatal(err)
	}
	if len(sha) != 64 {
		t.Fatalf("sha = %q, want 64 hex chars", sha)
	}
	got, gsha, ok := s.Get("ab12cd")
	if !ok || string(got) != string(data) || gsha != sha {
		t.Fatalf("Get = %q/%q/%v, want the stored artifact", got, gsha, ok)
	}
	if _, _, ok := s.Get("ffffff"); ok {
		t.Fatal("absent key reported as hit")
	}
	st := s.Stats()
	if st.Puts != 1 || st.MemHits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutImmutability(t *testing.T) {
	s, _ := New(Config{})
	if _, err := s.Put("a", "aa", []byte("one")); err != nil {
		t.Fatal(err)
	}
	// Identical bytes: accepted as a duplicate, not rewritten.
	if _, err := s.Put("b", "aa", []byte("one")); err != nil {
		t.Fatalf("identical re-put rejected: %v", err)
	}
	if _, err := s.Put("a", "aa", []byte("two")); !errors.Is(err, ErrMismatch) {
		t.Fatalf("conflicting re-put: err = %v, want ErrMismatch", err)
	}
	if st := s.Stats(); st.DupPuts != 1 {
		t.Fatalf("DupPuts = %d, want 1", st.DupPuts)
	}
}

func TestKeyValidation(t *testing.T) {
	s, _ := New(Config{})
	for _, bad := range []string{"", "../etc", "ABCDEF", "xyz", "a b"} {
		if _, err := s.Put("t", bad, []byte("x")); err == nil {
			t.Errorf("Put accepted invalid key %q", bad)
		}
	}
}

// TestMemSpillToDisk fills the memory layer past its budget and checks
// cold artifacts are still served — from disk, verified, and promoted.
func TestMemSpillToDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, MemBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	blob := func(i int) []byte { return []byte(fmt.Sprintf("artifact %02d padded to 32 b\n", i)) }
	for i := 0; i < 4; i++ {
		if _, err := s.Put("t", fmt.Sprintf("%02d", i), blob(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.MemEvictions == 0 {
		t.Fatalf("no memory evictions at 4x budget: %+v", st)
	}
	if st.MemBytes > 64 {
		t.Fatalf("memory layer over budget: %+v", st)
	}
	// Every artifact remains servable; the oldest comes from disk.
	for i := 0; i < 4; i++ {
		got, _, ok := s.Get(fmt.Sprintf("%02d", i))
		if !ok || string(got) != string(blob(i)) {
			t.Fatalf("artifact %d lost after spill", i)
		}
	}
	if st := s.Stats(); st.DiskHits == 0 {
		t.Fatalf("no disk hits: %+v", st)
	}
}

// TestMemOnlyEviction: without a disk layer, spilled artifacts are gone
// and their tenants refunded.
func TestMemOnlyEviction(t *testing.T) {
	s, _ := New(Config{MemBytes: 40})
	for i := 0; i < 3; i++ {
		if _, err := s.Put("t", fmt.Sprintf("%02d", i), make([]byte, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := s.Get("00"); ok {
		t.Fatal("evicted artifact still served")
	}
	if u := s.TenantUsage("t"); u != 40 {
		t.Fatalf("tenant usage = %d, want 40 (evicted bytes refunded)", u)
	}
}

func TestCorruptFileIsMissAndDeleted(t *testing.T) {
	dir := t.TempDir()
	s, _ := New(Config{Dir: dir, MemBytes: 8})
	// Small budget forces the artifact to disk-only immediately.
	if _, err := s.Put("t", "ab", []byte("sixteen byte body")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ab.art")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("ab"); ok {
		t.Fatal("corrupt artifact served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt file not deleted")
	}
	if st := s.Stats(); st.Corrupt != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTenantQuota(t *testing.T) {
	s, _ := New(Config{TenantQuotaBytes: 100})
	if _, err := s.Put("alice", "aa", make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("alice", "bb", make([]byte, 30)); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota put: err = %v, want ErrQuota", err)
	}
	// Another tenant has its own budget.
	if _, err := s.Put("bob", "cc", make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	// A duplicate put of alice's artifact by bob does not charge bob.
	if _, err := s.Put("bob", "aa", make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	if u := s.TenantUsage("bob"); u != 80 {
		t.Fatalf("bob charged for a duplicate: %d", u)
	}
}

// TestDiskBudgetEvicts bounds the disk layer and checks LRU files are
// deleted while recently used ones survive.
func TestDiskBudgetEvicts(t *testing.T) {
	dir := t.TempDir()
	s, _ := New(Config{Dir: dir, MemBytes: 1, DiskBytes: 64})
	for i := 0; i < 4; i++ {
		if _, err := s.Put("t", fmt.Sprintf("%02d", i), make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.DiskEvictions == 0 || st.DiskBytes > 64 {
		t.Fatalf("disk budget not enforced: %+v", st)
	}
	if _, _, ok := s.Get("00"); ok {
		t.Fatal("disk-evicted artifact still indexed")
	}
	if _, _, ok := s.Get("03"); !ok {
		t.Fatal("most recent artifact evicted")
	}
}

// TestReindexAcrossRestart: a second store over the same directory
// serves the first store's artifacts and keeps tenant attribution.
func TestReindexAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, _ := New(Config{Dir: dir})
	data := []byte("persisted artifact\n")
	sha, err := s1.Put("alice", "abcd", data)
	if err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, gsha, ok := s2.Get("abcd")
	if !ok || string(got) != string(data) || gsha != sha {
		t.Fatalf("restart lost the artifact: %q/%q/%v", got, gsha, ok)
	}
	if u := s2.TenantUsage("alice"); u != int64(len(data)) {
		t.Fatalf("tenant attribution lost: %d", u)
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Fatalf("restart Get not a disk hit: %+v", st)
	}
}

func TestKeysOrder(t *testing.T) {
	s, _ := New(Config{})
	for _, k := range []string{"aa", "bb", "cc"} {
		s.Put("t", k, []byte(k))
	}
	s.Get("aa") // touch: aa becomes most recent
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "aa" {
		t.Fatalf("Keys() = %v, want aa first", keys)
	}
}
