package tlb

import (
	"fmt"

	"hbat/internal/vm"
)

// Replacement selects a bank's replacement policy. The paper uses LRU
// in the small upper-level structures (4-16 entries) and random in the
// 128-entry base TLBs (Section 4.3, Figure 6).
type Replacement uint8

const (
	// Random replacement (xorshift-driven, deterministic per seed).
	Random Replacement = iota
	// LRU replacement.
	LRU
	// FIFO replacement (used by ablation benchmarks).
	FIFO
)

func (r Replacement) String() string {
	switch r {
	case Random:
		return "random"
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	}
	return "repl(?)"
}

type bankEntry struct {
	vpn     uint64
	pte     *vm.PTE
	valid   bool
	lastUse int64 // LRU timestamp
	filled  int64 // FIFO timestamp
}

// Bank is one translation store: fully associative by default, or
// set-associative via NewSetAssocBank (every TLB of the paper's Table 2
// is fully associative, but set-associative organizations are the
// practical alternative the ablation benchmarks quantify). It has no
// notion of ports; devices compose banks with their own port
// arbitration. Bank is also used directly by the Figure 6 miss-rate
// study.
type Bank struct {
	entries []bankEntry
	index   map[uint64]int // vpn -> entry index
	repl    Replacement
	rng     uint64
	ways    int // entries per set (== len(entries) for fully associative)
	nsets   int

	// Hits and Misses count Lookup outcomes.
	Hits   uint64
	Misses uint64
}

// NewBank creates a fully-associative bank with size entries.
func NewBank(size int, repl Replacement, seed uint64) *Bank {
	return NewSetAssocBank(size, size, repl, seed)
}

// NewSetAssocBank creates a bank of size entries organized as sets of
// `ways` entries each, indexed by the low virtual-page-number bits.
// ways == size gives full associativity.
func NewSetAssocBank(size, ways int, repl Replacement, seed uint64) *Bank {
	if size <= 0 || ways <= 0 || size%ways != 0 {
		panic(fmt.Sprintf("tlb: invalid bank geometry %d entries / %d ways", size, ways))
	}
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Bank{
		entries: make([]bankEntry, size),
		index:   make(map[uint64]int, size),
		repl:    repl,
		rng:     seed,
		ways:    ways,
		nsets:   size / ways,
	}
}

// Ways returns the bank's associativity.
func (b *Bank) Ways() int { return b.ways }

// set returns the index range [lo, hi) that may hold vpn.
func (b *Bank) set(vpn uint64) (lo, hi int) {
	s := int(vpn % uint64(b.nsets))
	return s * b.ways, (s + 1) * b.ways
}

// Size returns the bank's entry count.
func (b *Bank) Size() int { return len(b.entries) }

// Replacement returns the bank's replacement policy.
func (b *Bank) Replacement() Replacement { return b.repl }

func (b *Bank) rand() uint64 {
	x := b.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	b.rng = x
	return x
}

// Lookup finds vpn, updating recency on a hit.
func (b *Bank) Lookup(vpn uint64, now int64) (*vm.PTE, bool) {
	if i, ok := b.index[vpn]; ok {
		b.entries[i].lastUse = now
		b.Hits++
		return b.entries[i].pte, true
	}
	b.Misses++
	return nil, false
}

// Probe finds vpn without updating recency or counters.
func (b *Bank) Probe(vpn uint64) (*vm.PTE, bool) {
	if i, ok := b.index[vpn]; ok {
		return b.entries[i].pte, true
	}
	return nil, false
}

// Touch refreshes the recency of vpn if present (used when a piggyback
// shares an in-flight translation).
func (b *Bank) Touch(vpn uint64, now int64) {
	if i, ok := b.index[vpn]; ok {
		b.entries[i].lastUse = now
	}
}

// Insert installs vpn -> pte, evicting per the replacement policy if
// the bank is full. It returns the evicted VPN and whether an eviction
// of a valid entry occurred (multi-level designs use this to enforce
// inclusion; pretranslation uses it to trigger coherence flushes).
func (b *Bank) Insert(vpn uint64, pte *vm.PTE, now int64) (evictedVPN uint64, evicted bool) {
	if i, ok := b.index[vpn]; ok {
		// Refresh in place (can happen when a fill races a prior fill
		// of the same page).
		b.entries[i].pte = pte
		b.entries[i].lastUse = now
		b.entries[i].filled = now
		return 0, false
	}
	lo, hi := b.set(vpn)
	victim := -1
	for i := lo; i < hi; i++ {
		if !b.entries[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		switch b.repl {
		case LRU:
			victim = lo
			for i := lo + 1; i < hi; i++ {
				if b.entries[i].lastUse < b.entries[victim].lastUse {
					victim = i
				}
			}
		case FIFO:
			victim = lo
			for i := lo + 1; i < hi; i++ {
				if b.entries[i].filled < b.entries[victim].filled {
					victim = i
				}
			}
		default:
			victim = lo + int(b.rand()%uint64(b.ways))
		}
		evictedVPN = b.entries[victim].vpn
		evicted = true
		delete(b.index, evictedVPN)
	}
	b.entries[victim] = bankEntry{vpn: vpn, pte: pte, valid: true, lastUse: now, filled: now}
	b.index[vpn] = victim
	return evictedVPN, evicted
}

// Invalidate removes vpn if present, reporting whether it was.
func (b *Bank) Invalidate(vpn uint64) bool {
	i, ok := b.index[vpn]
	if !ok {
		return false
	}
	b.entries[i] = bankEntry{}
	delete(b.index, vpn)
	return true
}

// Flush empties the bank.
func (b *Bank) Flush() {
	for i := range b.entries {
		b.entries[i] = bankEntry{}
	}
	clear(b.index)
}

// Len reports how many valid entries the bank holds.
func (b *Bank) Len() int { return len(b.index) }

// VPNs returns the set of resident VPNs (for invariant checks in tests).
func (b *Bank) VPNs() []uint64 {
	out := make([]uint64, 0, len(b.index))
	for vpn := range b.index {
		out = append(out, vpn)
	}
	return out
}
