package tlb

import (
	"testing"
	"testing/quick"

	"hbat/internal/vm"
)

func testAS(t *testing.T, pageSize uint64) *vm.AddressSpace {
	t.Helper()
	as := vm.NewAddressSpace(pageSize)
	as.AddRegion(vm.Region{Name: "all", Base: 0, Size: 1 << 40, Perm: vm.PermRW})
	return as
}

func TestBankLookupInsert(t *testing.T) {
	b := NewBank(4, LRU, 1)
	if _, ok := b.Lookup(10, 1); ok {
		t.Fatal("empty bank hit")
	}
	pte := &vm.PTE{VPN: 10, PFN: 99}
	b.Insert(10, pte, 2)
	got, ok := b.Lookup(10, 3)
	if !ok || got != pte {
		t.Fatalf("lookup after insert: ok=%v pte=%v", ok, got)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
}

func TestBankLRUEviction(t *testing.T) {
	b := NewBank(3, LRU, 1)
	b.Insert(1, nil, 1)
	b.Insert(2, nil, 2)
	b.Insert(3, nil, 3)
	// Touch 1 so 2 is the LRU victim.
	b.Lookup(1, 4)
	evicted, ok := b.Insert(4, nil, 5)
	if !ok || evicted != 2 {
		t.Fatalf("evicted %d (ok=%v), want 2", evicted, ok)
	}
	if _, hit := b.Probe(2); hit {
		t.Fatal("evicted entry still present")
	}
	for _, vpn := range []uint64{1, 3, 4} {
		if _, hit := b.Probe(vpn); !hit {
			t.Fatalf("vpn %d missing", vpn)
		}
	}
}

func TestBankFIFOEviction(t *testing.T) {
	b := NewBank(2, FIFO, 1)
	b.Insert(1, nil, 1)
	b.Insert(2, nil, 2)
	b.Lookup(1, 3) // recency must NOT matter for FIFO
	evicted, ok := b.Insert(3, nil, 4)
	if !ok || evicted != 1 {
		t.Fatalf("evicted %d (ok=%v), want 1 (oldest fill)", evicted, ok)
	}
}

func TestBankRandomEvictionIsValidEntry(t *testing.T) {
	b := NewBank(4, Random, 42)
	for vpn := uint64(0); vpn < 4; vpn++ {
		b.Insert(vpn, nil, int64(vpn))
	}
	for vpn := uint64(4); vpn < 100; vpn++ {
		evicted, ok := b.Insert(vpn, nil, int64(vpn))
		if !ok {
			t.Fatal("full bank must evict")
		}
		if _, hit := b.Probe(evicted); hit {
			t.Fatalf("evicted vpn %d still present", evicted)
		}
		if b.Len() != 4 {
			t.Fatalf("Len = %d, want 4", b.Len())
		}
	}
}

func TestBankInvalidateAndFlush(t *testing.T) {
	b := NewBank(4, LRU, 1)
	b.Insert(7, nil, 1)
	if !b.Invalidate(7) {
		t.Fatal("Invalidate of resident vpn returned false")
	}
	if b.Invalidate(7) {
		t.Fatal("Invalidate of absent vpn returned true")
	}
	b.Insert(1, nil, 2)
	b.Insert(2, nil, 3)
	b.Flush()
	if b.Len() != 0 {
		t.Fatalf("Len after flush = %d", b.Len())
	}
}

func TestBankReinsertRefreshes(t *testing.T) {
	b := NewBank(2, LRU, 1)
	b.Insert(1, nil, 1)
	b.Insert(2, nil, 2)
	b.Insert(1, &vm.PTE{PFN: 5}, 3) // refresh, no eviction
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	pte, _ := b.Probe(1)
	if pte == nil || pte.PFN != 5 {
		t.Fatalf("reinsert did not update PTE: %v", pte)
	}
	// 2 is now the LRU victim.
	if evicted, _ := b.Insert(3, nil, 4); evicted != 2 {
		t.Fatalf("evicted %d, want 2", evicted)
	}
}

// Property: after any sequence of inserts, the bank never exceeds its
// capacity, every resident VPN probes successfully, and a hit always
// returns the most recently inserted PTE for that VPN.
func TestBankProperties(t *testing.T) {
	check := func(ops []uint16, replRaw uint8) bool {
		repl := Replacement(replRaw % 3)
		b := NewBank(8, repl, 7)
		latest := map[uint64]*vm.PTE{}
		for i, op := range ops {
			vpn := uint64(op % 64)
			pte := &vm.PTE{VPN: vpn, PFN: uint64(i + 1)}
			b.Insert(vpn, pte, int64(i))
			latest[vpn] = pte
			if b.Len() > 8 {
				return false
			}
		}
		for _, vpn := range b.VPNs() {
			pte, ok := b.Probe(vpn)
			if !ok || pte != latest[vpn] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: an LRU bank of size n fed a cyclic reference pattern of
// n distinct pages never misses after warmup, while a cycle of n+1
// pages always misses (the classic LRU pathologies).
func TestBankLRUCyclicProperty(t *testing.T) {
	const n = 8
	b := NewBank(n, LRU, 1)
	now := int64(0)
	ref := func(vpn uint64) bool {
		now++
		if _, ok := b.Lookup(vpn, now); ok {
			return true
		}
		b.Insert(vpn, nil, now)
		return false
	}
	for round := 0; round < 5; round++ {
		for vpn := uint64(0); vpn < n; vpn++ {
			hit := ref(vpn)
			if round > 0 && !hit {
				t.Fatalf("round %d vpn %d missed in size-%d LRU", round, vpn, n)
			}
		}
	}
	b.Flush()
	for round := 0; round < 5; round++ {
		for vpn := uint64(0); vpn < n+1; vpn++ {
			if ref(vpn) && round > 0 {
				t.Fatalf("cyclic n+1 pattern hit in size-%d LRU", n)
			}
		}
	}
}

func TestSetAssocResidency(t *testing.T) {
	b := NewSetAssocBank(8, 2, LRU, 1) // 4 sets x 2 ways
	// Three VPNs mapping to set 1: 1, 5, 9 (mod 4).
	b.Insert(1, nil, 1)
	b.Insert(5, nil, 2)
	b.Insert(9, nil, 3) // evicts LRU of the set (vpn 1)
	if _, ok := b.Probe(1); ok {
		t.Fatal("2-way set kept three conflicting entries")
	}
	for _, vpn := range []uint64{5, 9} {
		if _, ok := b.Probe(vpn); !ok {
			t.Fatalf("vpn %d lost", vpn)
		}
	}
	// Other sets are untouched by the conflict.
	b.Insert(2, nil, 4)
	if _, ok := b.Probe(2); !ok {
		t.Fatal("unrelated set disturbed")
	}
	if b.Ways() != 2 {
		t.Fatalf("Ways() = %d", b.Ways())
	}
}

func TestSetAssocInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 8 entries / 3 ways")
		}
	}()
	NewSetAssocBank(8, 3, LRU, 1)
}

// Property: a set-associative bank never holds more than `ways` entries
// of any one congruence class, never exceeds capacity, and every
// resident entry remains findable. (No hit-rate ordering is asserted:
// neither organization dominates the other pointwise — a cycle over one
// congruence class favors full associativity, a cycle over size+1
// distinct pages favors the set-associative split.)
func TestSetAssocProperties(t *testing.T) {
	check := func(refs []uint16) bool {
		sa := NewSetAssocBank(16, 4, LRU, 3)
		now := int64(0)
		for _, r := range refs {
			now++
			vpn := uint64(r % 64)
			if _, ok := sa.Lookup(vpn, now); !ok {
				sa.Insert(vpn, nil, now)
			}
			counts := map[uint64]int{}
			for _, v := range sa.VPNs() {
				counts[v%4]++
				if counts[v%4] > 4 {
					return false
				}
				if _, ok := sa.Probe(v); !ok {
					return false
				}
			}
			if sa.Len() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
