package tlb

import (
	"fmt"
	"sort"

	"hbat/internal/vm"
)

// Spec describes one analyzed design from Table 2 of the paper.
type Spec struct {
	Mnemonic    string
	Description string
	Build       func(as *vm.AddressSpace, seed uint64) Device
}

// The thirteen analyzed configurations of Table 2. Every base structure
// holds 128 entries; interleaved banks split those entries evenly.
var specs = map[string]Spec{
	"T4": {
		Mnemonic:    "T4",
		Description: "4-ported TLB, 128 entries, fully-associative, random replacement",
		Build: func(as *vm.AddressSpace, seed uint64) Device {
			return NewMultiported("T4", as, 128, 4, 0, Random, seed)
		},
	},
	"T2": {
		Mnemonic:    "T2",
		Description: "2-ported TLB, 128 entries, fully-associative, random replacement",
		Build: func(as *vm.AddressSpace, seed uint64) Device {
			return NewMultiported("T2", as, 128, 2, 0, Random, seed)
		},
	},
	"T1": {
		Mnemonic:    "T1",
		Description: "1-ported TLB, 128 entries, fully-associative, random replacement",
		Build: func(as *vm.AddressSpace, seed uint64) Device {
			return NewMultiported("T1", as, 128, 1, 0, Random, seed)
		},
	},
	"I8": {
		Mnemonic:    "I8",
		Description: "8-way bit-select interleaved TLB, 128 entries (16-entry fully-associative banks), random replacement in bank",
		Build: func(as *vm.AddressSpace, seed uint64) Device {
			return NewInterleaved("I8", as, 128, 8, BitSelect(8), 0, Random, seed)
		},
	},
	"I4": {
		Mnemonic:    "I4",
		Description: "4-way bit-select interleaved TLB, 128 entries (32-entry fully-associative banks), random replacement in bank",
		Build: func(as *vm.AddressSpace, seed uint64) Device {
			return NewInterleaved("I4", as, 128, 4, BitSelect(4), 0, Random, seed)
		},
	},
	"X4": {
		Mnemonic:    "X4",
		Description: "4-way XOR-select interleaved TLB, 128 entries (32-entry fully-associative banks), random replacement in bank",
		Build: func(as *vm.AddressSpace, seed uint64) Device {
			return NewInterleaved("X4", as, 128, 4, XORSelect(4), 0, Random, seed)
		},
	},
	"M16": {
		Mnemonic:    "M16",
		Description: "4-ported 16-entry L1 TLB w/LRU replacement, 128-entry L2 TLB, fully-associative, random replacement",
		Build: func(as *vm.AddressSpace, seed uint64) Device {
			return NewMultilevel("M16", as, 16, 4, 128, seed)
		},
	},
	"M8": {
		Mnemonic:    "M8",
		Description: "4-ported 8-entry L1 TLB w/LRU replacement, 128-entry L2 TLB, fully-associative, random replacement",
		Build: func(as *vm.AddressSpace, seed uint64) Device {
			return NewMultilevel("M8", as, 8, 4, 128, seed)
		},
	},
	"M4": {
		Mnemonic:    "M4",
		Description: "4-ported 4-entry L1 TLB w/LRU replacement, 128-entry L2 TLB, fully-associative, random replacement",
		Build: func(as *vm.AddressSpace, seed uint64) Device {
			return NewMultilevel("M4", as, 4, 4, 128, seed)
		},
	},
	"P8": {
		Mnemonic:    "P8",
		Description: "4-ported 8-entry pretranslation cache w/LRU replacement, 128-entry L2 TLB, fully-associative, random replacement",
		Build: func(as *vm.AddressSpace, seed uint64) Device {
			return NewPretranslation("P8", as, 8, 4, 128, seed)
		},
	},
	"PB2": {
		Mnemonic:    "PB2",
		Description: "2-ported TLB w/ 2 piggyback ports, 128 entries, fully-associative, random replacement",
		Build: func(as *vm.AddressSpace, seed uint64) Device {
			return NewMultiported("PB2", as, 128, 2, 2, Random, seed)
		},
	},
	"PB1": {
		Mnemonic:    "PB1",
		Description: "1-ported TLB w/ 3 piggyback ports, 128 entries, fully-associative, random replacement",
		Build: func(as *vm.AddressSpace, seed uint64) Device {
			return NewMultiported("PB1", as, 128, 1, 3, Random, seed)
		},
	},
	"I4/PB": {
		Mnemonic:    "I4/PB",
		Description: "4-way bit-select interleaved TLB w/piggybacked banks, 128 entries (32 entries/bank), random replacement in bank",
		Build: func(as *vm.AddressSpace, seed uint64) Device {
			return NewInterleaved("I4/PB", as, 128, 4, BitSelect(4), 3, Random, seed)
		},
	},
}

// DesignOrder lists the Table 2 mnemonics in the paper's figure order.
var DesignOrder = []string{
	"T4", "T2", "T1",
	"M16", "M8", "M4", "P8",
	"I8", "I4", "X4",
	"PB2", "PB1", "I4/PB",
}

// LookupSpec returns the Table 2 spec for a mnemonic.
func LookupSpec(mnemonic string) (Spec, error) {
	s, ok := specs[mnemonic]
	if !ok {
		known := make([]string, 0, len(specs))
		for k := range specs {
			known = append(known, k)
		}
		sort.Strings(known)
		return Spec{}, fmt.Errorf("tlb: unknown design %q (known: %v)", mnemonic, known)
	}
	return s, nil
}

// NewFromSpec builds the named Table 2 design over as.
func NewFromSpec(mnemonic string, as *vm.AddressSpace, seed uint64) (Device, error) {
	s, err := LookupSpec(mnemonic)
	if err != nil {
		return nil, err
	}
	return s.Build(as, seed), nil
}
