package tlb

import (
	"testing"
)

func TestAllSpecsBuild(t *testing.T) {
	if len(DesignOrder) != 13 {
		t.Fatalf("Table 2 lists 13 designs, DesignOrder has %d", len(DesignOrder))
	}
	as := testAS(t, 4096)
	for _, m := range DesignOrder {
		spec, err := LookupSpec(m)
		if err != nil {
			t.Fatalf("LookupSpec(%s): %v", m, err)
		}
		if spec.Description == "" {
			t.Errorf("%s: empty description", m)
		}
		d := spec.Build(as, 1)
		if d.Name() != m {
			t.Errorf("built device names itself %q, want %q", d.Name(), m)
		}
		// Basic exercise: fill, hit, flush, miss.
		fill(t, d, 123)
		d.BeginCycle(1)
		if r := d.Lookup(Request{VPN: 123, Base: 8, Load: true}, 1); r.Outcome != Hit {
			t.Errorf("%s: warm lookup %v", m, r.Outcome)
		}
		d.FlushAll()
		d.BeginCycle(2)
		if r := d.Lookup(Request{VPN: 123, Base: 8, Load: true}, 2); r.Outcome != Miss {
			t.Errorf("%s: post-flush lookup %v", m, r.Outcome)
		}
	}
}

func TestLookupSpecUnknown(t *testing.T) {
	if _, err := LookupSpec("T99"); err == nil {
		t.Fatal("unknown mnemonic accepted")
	}
	if _, err := NewFromSpec("T99", testAS(t, 4096), 1); err == nil {
		t.Fatal("NewFromSpec accepted unknown mnemonic")
	}
}

func TestTable2Parameters(t *testing.T) {
	as := testAS(t, 4096)
	// Spot-check the structural parameters Table 2 specifies.
	d, _ := NewFromSpec("T4", as, 1)
	if mp := d.(*Multiported); mp.Ports() != 4 || mp.Bank().Size() != 128 {
		t.Error("T4 structure wrong")
	}
	d, _ = NewFromSpec("PB1", as, 1)
	if mp := d.(*Multiported); mp.Ports() != 1 || mp.PiggybackPorts() != 3 {
		t.Error("PB1 structure wrong")
	}
	d, _ = NewFromSpec("I8", as, 1)
	if il := d.(*Interleaved); il.Banks() != 8 || il.Bank(0).Size() != 16 {
		t.Error("I8 structure wrong")
	}
	d, _ = NewFromSpec("M4", as, 1)
	ml := d.(*Multilevel)
	if ml.L1().Size() != 4 || ml.L2().Size() != 128 {
		t.Error("M4 structure wrong")
	}
	if ml.L1().Replacement() != LRU || ml.L2().Replacement() != Random {
		t.Error("M4 replacement policies wrong")
	}
	d, _ = NewFromSpec("X4", as, 1)
	il := d.(*Interleaved)
	// XOR-select must not equal bit-select everywhere.
	diff := false
	for vpn := uint64(0); vpn < 64; vpn++ {
		if il.SelectBank(vpn) != int(vpn%4) {
			diff = true
		}
	}
	if !diff {
		t.Error("X4 select function is plain bit selection")
	}
}

func TestMissRateSimAndReplacementFor(t *testing.T) {
	if ReplacementFor(4) != LRU || ReplacementFor(16) != LRU {
		t.Error("small sizes should be LRU")
	}
	if ReplacementFor(32) != Random || ReplacementFor(128) != Random {
		t.Error("large sizes should be random")
	}
	s := NewMissRateSim(4, LRU, 1)
	for round := 0; round < 4; round++ {
		for vpn := uint64(0); vpn < 4; vpn++ {
			s.Ref(vpn)
		}
	}
	if s.Misses != 4 {
		t.Fatalf("cyclic-4 on 4-entry LRU: %d misses, want 4 cold", s.Misses)
	}
	if got := s.MissRate(); got != 0.25 {
		t.Fatalf("miss rate %f", got)
	}
}
