package tlb

import (
	"testing"

	"hbat/internal/isa"
)

// TestInvalidateAllDesigns: after a shootdown, no design may service
// the page from any cached structure — the next access must walk.
func TestInvalidateAllDesigns(t *testing.T) {
	for _, mnemonic := range DesignOrder {
		t.Run(mnemonic, func(t *testing.T) {
			as := testAS(t, 4096)
			d, err := NewFromSpec(mnemonic, as, 1)
			if err != nil {
				t.Fatal(err)
			}
			fill(t, d, 77)
			d.BeginCycle(1)
			if r := d.Lookup(Request{VPN: 77, Base: isa.T0, Load: true}, 1); r.Outcome != Hit {
				t.Fatalf("warm lookup: %v", r.Outcome)
			}
			d.Invalidate(77)
			// Drain any latency-modeling state and re-probe over fresh
			// cycles: every retry must end in Miss, never a stale Hit.
			for now := int64(10); now < 16; now++ {
				d.BeginCycle(now)
				r := d.Lookup(Request{VPN: 77, Base: isa.T0, Load: true}, now)
				switch r.Outcome {
				case Hit:
					t.Fatalf("stale hit after shootdown at cycle %d", now)
				case Miss:
					return // correct
				}
			}
			t.Fatal("lookup never resolved after shootdown")
		})
	}
}

// TestInvalidateIsTargeted: shooting down one page must not disturb
// translations of other pages.
func TestInvalidateIsTargeted(t *testing.T) {
	for _, mnemonic := range DesignOrder {
		t.Run(mnemonic, func(t *testing.T) {
			as := testAS(t, 4096)
			d, err := NewFromSpec(mnemonic, as, 1)
			if err != nil {
				t.Fatal(err)
			}
			fill(t, d, 10)
			fill(t, d, 11)
			d.Invalidate(10)
			d.BeginCycle(1)
			if r := d.Lookup(Request{VPN: 11}, 1); r.Outcome != Hit {
				t.Fatalf("unrelated page lost: %v", r.Outcome)
			}
		})
	}
}

// TestMultilevelInvalidateMaintainsInclusion: the L1 never retains an
// entry the L2 dropped.
func TestMultilevelInvalidateMaintainsInclusion(t *testing.T) {
	as := testAS(t, 4096)
	d := NewMultilevel("M8", as, 8, 4, 128, 1)
	for vpn := uint64(1); vpn <= 6; vpn++ {
		fill(t, d, vpn)
	}
	for vpn := uint64(1); vpn <= 6; vpn += 2 {
		d.Invalidate(vpn)
		if !d.CheckInclusion() {
			t.Fatalf("inclusion violated after invalidating %d", vpn)
		}
		if _, ok := d.L1().Probe(vpn); ok {
			t.Fatalf("L1 retains shot-down vpn %d", vpn)
		}
	}
}

// TestPretranslationInvalidateKillsAttachments: a shootdown of a page
// whose translation is attached to a register must flush it (the
// paper's coherence rule extends to consistency operations).
func TestPretranslationInvalidateKillsAttachments(t *testing.T) {
	as := testAS(t, 4096)
	d := NewPretranslation("P8", as, 8, 4, 128, 1)
	fill(t, d, 5)
	d.BeginCycle(1)
	d.Lookup(Request{VPN: 5, Base: isa.T0, Load: true}, 1)
	if d.CacheLen() == 0 {
		t.Fatal("setup: nothing attached")
	}
	d.Invalidate(5)
	if d.CacheLen() != 0 {
		t.Fatal("attachment survived the shootdown")
	}
}
