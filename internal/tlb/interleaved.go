package tlb

import (
	"fmt"

	"hbat/internal/vm"
)

// BankSelect maps a virtual page number to a bank index.
type BankSelect func(vpn uint64) int

// BitSelect returns the paper's bit-selection function: the address
// bits immediately above the page offset pick the bank (Section 4.1).
func BitSelect(banks int) BankSelect {
	mask := uint64(banks - 1)
	return func(vpn uint64) int { return int(vpn & mask) }
}

// XORSelect returns the paper's XOR-folding function for X4: the three
// least-significant groups of two address bits above the page offset
// are XOR'd together (Section 4.1). For other bank counts, the same
// construction folds three groups of log2(banks) bits.
func XORSelect(banks int) BankSelect {
	bits := uint(0)
	for b := banks; b > 1; b >>= 1 {
		bits++
	}
	mask := uint64(banks - 1)
	return func(vpn uint64) int {
		return int((vpn ^ (vpn >> bits) ^ (vpn >> (2 * bits))) & mask)
	}
}

// Interleaved is the design of Section 3.2: an interconnect distributes
// requests over independently ported banks; simultaneous requests to
// distinct banks proceed in parallel, while requests colliding on one
// bank serialize (the later one retries next cycle). With perBankPiggy
// > 0 it becomes the I4/PB design of Section 4.3: requests that meet at
// a busy bank may still complete this cycle when their virtual page
// matches the bank's in-flight translation.
type Interleaved struct {
	name  string
	as    *vm.AddressSpace
	banks []*Bank
	sel   BankSelect
	piggy int // piggyback ports per bank (0 = plain interleaved)
	stats Stats

	// per-cycle state
	busy      []bool
	inflight  []inflightXlat // per bank
	piggyUsed []int
}

// NewInterleaved builds an interleaved TLB with totalEntries split
// evenly over nbanks fully-associative banks.
func NewInterleaved(name string, as *vm.AddressSpace, totalEntries, nbanks int, sel BankSelect, perBankPiggy int, repl Replacement, seed uint64) *Interleaved {
	if nbanks < 1 || nbanks&(nbanks-1) != 0 {
		panic(fmt.Sprintf("tlb: %s bank count %d must be a power of two", name, nbanks))
	}
	if totalEntries%nbanks != 0 {
		panic(fmt.Sprintf("tlb: %s entries %d not divisible by %d banks", name, totalEntries, nbanks))
	}
	t := &Interleaved{
		name:      name,
		as:        as,
		banks:     make([]*Bank, nbanks),
		sel:       sel,
		piggy:     perBankPiggy,
		busy:      make([]bool, nbanks),
		inflight:  make([]inflightXlat, nbanks),
		piggyUsed: make([]int, nbanks),
	}
	for i := range t.banks {
		t.banks[i] = NewBank(totalEntries/nbanks, repl, seed+uint64(i)*0x9e37)
	}
	return t
}

// Name implements Device.
func (t *Interleaved) Name() string { return t.name }

// Banks returns the bank count.
func (t *Interleaved) Banks() int { return len(t.banks) }

// BeginCycle implements Device.
func (t *Interleaved) BeginCycle(now int64) {
	for i := range t.busy {
		t.busy[i] = false
		t.piggyUsed[i] = 0
	}
}

// Lookup implements Device.
func (t *Interleaved) Lookup(req Request, now int64) Result {
	b := t.sel(req.VPN)
	if t.busy[b] {
		// Bank conflict. With per-bank piggyback ports a same-page
		// request can share the in-flight translation.
		if t.piggy > 0 && t.piggyUsed[b] < t.piggy && t.inflight[b].vpn == req.VPN {
			t.piggyUsed[b]++
			t.stats.Piggybacks++
			t.stats.Lookups++
			if t.inflight[b].miss {
				t.stats.Misses++
				return Result{Outcome: Miss}
			}
			t.stats.Hits++
			t.stats.observeExtra(0)
			if statusWrite(t.inflight[b].pte, req.Write) {
				t.stats.StatusWrites++
			}
			return Result{Outcome: Hit, PTE: t.inflight[b].pte}
		}
		t.stats.NoPorts++
		return Result{Outcome: NoPort}
	}
	t.busy[b] = true
	t.stats.Lookups++
	pte, ok := t.banks[b].Lookup(req.VPN, now)
	if !ok {
		t.stats.Misses++
		t.inflight[b] = inflightXlat{vpn: req.VPN, miss: true}
		return Result{Outcome: Miss}
	}
	t.stats.Hits++
	t.stats.observeExtra(0)
	if statusWrite(pte, req.Write) {
		t.stats.StatusWrites++
	}
	t.inflight[b] = inflightXlat{vpn: req.VPN, pte: pte}
	return Result{Outcome: Hit, PTE: pte}
}

// Fill implements Device. The entry can only live in its selected bank,
// which is what limits the design's associativity (Section 3.2).
func (t *Interleaved) Fill(vpn uint64, now int64) (*vm.PTE, error) {
	pte, err := t.as.Walk(vpn)
	if err != nil {
		return nil, err
	}
	t.banks[t.sel(vpn)].Insert(vpn, pte, now)
	t.stats.Fills++
	return pte, nil
}

// Invalidate implements Device.
func (t *Interleaved) Invalidate(vpn uint64) {
	t.banks[t.sel(vpn)].Invalidate(vpn)
}

// FlushAll implements Device.
func (t *Interleaved) FlushAll() {
	for _, b := range t.banks {
		b.Flush()
	}
	t.stats.Flushes++
}

// Warm implements Warmer: installs the translation into its selected
// bank like a Fill without touching the statistics.
func (t *Interleaved) Warm(vpn uint64, pte *vm.PTE, now int64) {
	t.banks[t.sel(vpn)].Insert(vpn, pte, now)
}

// Stats implements Device.
func (t *Interleaved) Stats() *Stats { return &t.stats }

// Bank returns bank i for tests.
func (t *Interleaved) Bank(i int) *Bank { return t.banks[i] }

// SelectBank exposes the bank-selection function for tests.
func (t *Interleaved) SelectBank(vpn uint64) int { return t.sel(vpn) }
