package tlb

import (
	"testing"
	"testing/quick"
)

func TestBitSelect(t *testing.T) {
	sel := BitSelect(4)
	for vpn := uint64(0); vpn < 32; vpn++ {
		if got, want := sel(vpn), int(vpn%4); got != want {
			t.Fatalf("BitSelect(4)(%d) = %d, want %d", vpn, got, want)
		}
	}
}

func TestXORSelectInRangeAndSpreads(t *testing.T) {
	sel := XORSelect(4)
	counts := make([]int, 4)
	for vpn := uint64(0); vpn < 4096; vpn++ {
		b := sel(vpn)
		if b < 0 || b > 3 {
			t.Fatalf("bank %d out of range", b)
		}
		counts[b]++
	}
	for b, c := range counts {
		if c < 512 || c > 1536 {
			t.Fatalf("bank %d badly balanced: %d of 4096", b, c)
		}
	}
	// XOR folding must differ from bit selection somewhere, or it adds
	// nothing.
	bit := BitSelect(4)
	differs := false
	for vpn := uint64(0); vpn < 64; vpn++ {
		if sel(vpn) != bit(vpn) {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("XORSelect degenerates to BitSelect")
	}
}

func TestInterleavedBankConflict(t *testing.T) {
	as := testAS(t, 4096)
	d := NewInterleaved("I4", as, 128, 4, BitSelect(4), 0, Random, 1)
	fill(t, d, 0) // bank 0
	fill(t, d, 4) // bank 0
	fill(t, d, 1) // bank 1

	d.BeginCycle(1)
	if r := d.Lookup(Request{VPN: 0}, 1); r.Outcome != Hit {
		t.Fatalf("first access to bank 0: %v", r.Outcome)
	}
	// Same bank, same cycle, different page: conflict.
	if r := d.Lookup(Request{VPN: 4}, 1); r.Outcome != NoPort {
		t.Fatalf("bank conflict: %v, want NoPort", r.Outcome)
	}
	// Different bank proceeds in parallel.
	if r := d.Lookup(Request{VPN: 1}, 1); r.Outcome != Hit {
		t.Fatalf("parallel bank: %v, want Hit", r.Outcome)
	}
}

func TestInterleavedFillGoesToSelectedBank(t *testing.T) {
	as := testAS(t, 4096)
	d := NewInterleaved("I8", as, 128, 8, BitSelect(8), 0, Random, 1)
	for vpn := uint64(0); vpn < 64; vpn++ {
		fill(t, d, vpn)
	}
	for vpn := uint64(0); vpn < 64; vpn++ {
		bank := d.SelectBank(vpn)
		if _, ok := d.Bank(bank).Probe(vpn); !ok {
			t.Fatalf("vpn %d not in its selected bank %d", vpn, bank)
		}
		for bi := 0; bi < d.Banks(); bi++ {
			if bi == bank {
				continue
			}
			if _, ok := d.Bank(bi).Probe(vpn); ok {
				t.Fatalf("vpn %d leaked into bank %d (selected %d)", vpn, bi, bank)
			}
		}
	}
}

func TestInterleavedPerBankPiggyback(t *testing.T) {
	as := testAS(t, 4096)
	d := NewInterleaved("I4/PB", as, 128, 4, BitSelect(4), 3, Random, 1)
	fill(t, d, 0)
	fill(t, d, 4)

	d.BeginCycle(1)
	if r := d.Lookup(Request{VPN: 0}, 1); r.Outcome != Hit {
		t.Fatal("first access should hit")
	}
	// Same bank, same page: piggybacks despite the busy bank.
	if r := d.Lookup(Request{VPN: 0}, 1); r.Outcome != Hit {
		t.Fatalf("same-page piggyback: %v", r.Outcome)
	}
	// Same bank, different page: still a conflict.
	if r := d.Lookup(Request{VPN: 4}, 1); r.Outcome != NoPort {
		t.Fatalf("different-page conflict: %v, want NoPort", r.Outcome)
	}
	if d.Stats().Piggybacks != 1 {
		t.Fatalf("piggybacks = %d, want 1", d.Stats().Piggybacks)
	}
}

// Property: an interleaved TLB's associativity restriction — a page is
// only ever resident in its selected bank, regardless of fill order.
func TestInterleavedResidencyProperty(t *testing.T) {
	as := testAS(t, 4096)
	check := func(vpns []uint16) bool {
		d := NewInterleaved("I4", as, 32, 4, BitSelect(4), 0, Random, 9)
		for _, v := range vpns {
			if _, err := d.Fill(uint64(v), 0); err != nil {
				return false
			}
		}
		total := 0
		for bi := 0; bi < 4; bi++ {
			for _, vpn := range d.Bank(bi).VPNs() {
				if d.SelectBank(vpn) != bi {
					return false
				}
				total++
			}
		}
		return total <= 32
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
