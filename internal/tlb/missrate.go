package tlb

// MissRateSim is the functional TLB model behind the paper's Figure 6:
// a fully-associative TLB of a given size and replacement policy fed a
// virtual-page reference stream, counting misses. It has no ports or
// timing — Figure 6 is a pure locality study.
type MissRateSim struct {
	bank *Bank
	tick int64

	Refs   uint64
	Misses uint64
}

// NewMissRateSim builds a functional fully-associative TLB model.
// Following Section 4.3, the paper uses LRU for the 4-16 entry sizes
// and random replacement for 32-128 entries; ReplacementFor encodes
// that convention.
func NewMissRateSim(entries int, repl Replacement, seed uint64) *MissRateSim {
	return &MissRateSim{bank: NewBank(entries, repl, seed)}
}

// ReplacementFor returns the replacement policy the paper pairs with a
// given fully-associative TLB size (Figure 6): LRU up to 16 entries,
// random from 32 entries up.
func ReplacementFor(entries int) Replacement {
	if entries <= 16 {
		return LRU
	}
	return Random
}

// Ref feeds one data reference's virtual page number.
func (s *MissRateSim) Ref(vpn uint64) {
	s.tick++
	s.Refs++
	if _, ok := s.bank.Lookup(vpn, s.tick); ok {
		return
	}
	s.Misses++
	s.bank.Insert(vpn, nil, s.tick)
}

// MissRate returns misses per reference.
func (s *MissRateSim) MissRate() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Refs)
}
