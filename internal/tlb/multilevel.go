package tlb

import (
	"hbat/internal/vm"
)

// Multilevel is the design of Section 3.3: a small multi-ported L1 TLB
// with LRU replacement shields a larger, single-ported, random-replaced
// L2 TLB. L1 hits are serviced with no visible latency; L1 misses are
// forwarded to the L2 in the following cycle where they may queue for
// the single port (minimum 2-cycle penalty, Section 4.1). Multi-level
// inclusion is enforced: fills load both levels, and an L2 replacement
// invalidates the corresponding L1 entry. Page-status changes write
// through to the L2 so the L1 can be flushed without writebacks.
//
// Table 2 configurations: M16, M8, M4 (16/8/4-entry L1 over a
// 128-entry L2).
type Multilevel struct {
	name  string
	as    *vm.AddressSpace
	l1    *Bank
	l2    *Bank
	ports int // L1 ports (4 in the paper: enough for all requesters)
	stats Stats

	l2Free    int64 // next cycle the single L2 port is free
	portsUsed int
}

// NewMultilevel builds a two-level TLB.
func NewMultilevel(name string, as *vm.AddressSpace, l1Entries, l1Ports, l2Entries int, seed uint64) *Multilevel {
	return &Multilevel{
		name:  name,
		as:    as,
		l1:    NewBank(l1Entries, LRU, seed),
		l2:    NewBank(l2Entries, Random, seed+0x51ed),
		ports: l1Ports,
	}
}

// Name implements Device.
func (t *Multilevel) Name() string { return t.name }

// BeginCycle implements Device.
func (t *Multilevel) BeginCycle(now int64) { t.portsUsed = 0 }

// reserveL2Port books the earliest available slot of the single L2
// port for a request arriving at cycle arrive, returning the cycle the
// access starts.
func (t *Multilevel) reserveL2Port(arrive int64) int64 {
	start := arrive
	if t.l2Free > start {
		start = t.l2Free
	}
	t.l2Free = start + 1
	return start
}

// Lookup implements Device.
func (t *Multilevel) Lookup(req Request, now int64) Result {
	if t.portsUsed >= t.ports {
		t.stats.NoPorts++
		return Result{Outcome: NoPort}
	}
	t.portsUsed++
	t.stats.Lookups++

	if pte, ok := t.l1.Lookup(req.VPN, now); ok {
		t.stats.Hits++
		t.stats.ShieldHits++
		t.stats.observeExtra(0)
		if statusWrite(pte, req.Write) {
			// Write-through of the status change to the L2: consumes a
			// background slot of the L2 port but adds no latency to
			// this request (Section 4.1).
			t.stats.StatusWrites++
			t.reserveL2Port(now + 1)
		}
		return Result{Outcome: Hit, PTE: pte}
	}
	t.stats.ShieldMisses++

	// Miss in the L1: the request is sent to the L2 next cycle and may
	// queue behind other L2 work. The minimum L1-miss penalty is 2
	// cycles: one to reach the L2, one to access it.
	start := t.reserveL2Port(now + 1)
	extra := (start - now) + 1
	t.stats.QueueCycles += uint64(start - (now + 1))

	if pte, ok := t.l2.Lookup(req.VPN, start); ok {
		t.stats.Hits++
		t.stats.observeExtra(extra)
		if statusWrite(pte, req.Write) {
			t.stats.StatusWrites++
		}
		// Promote into the L1. Inclusion holds: the entry is already
		// in the L2.
		t.l1.Insert(req.VPN, pte, now)
		return Result{Outcome: Hit, Extra: extra, PTE: pte}
	}
	t.stats.Misses++
	return Result{Outcome: Miss}
}

// Fill implements Device: loads the walked translation into both levels
// (Section 4.1), invalidating from the L1 any entry the L2 replacement
// displaced so that inclusion is preserved.
func (t *Multilevel) Fill(vpn uint64, now int64) (*vm.PTE, error) {
	pte, err := t.as.Walk(vpn)
	if err != nil {
		return nil, err
	}
	if evictedVPN, evicted := t.l2.Insert(vpn, pte, now); evicted {
		t.l1.Invalidate(evictedVPN)
	}
	t.l1.Insert(vpn, pte, now)
	t.stats.Fills++
	return pte, nil
}

// Invalidate implements Device: thanks to inclusion, invalidating both
// levels is sufficient and the L1 probe can never miss an entry the L2
// lacked.
func (t *Multilevel) Invalidate(vpn uint64) {
	if t.l2.Invalidate(vpn) {
		t.l1.Invalidate(vpn)
	}
}

// FlushAll implements Device.
func (t *Multilevel) FlushAll() {
	t.l1.Flush()
	t.l2.Flush()
	t.stats.Flushes++
}

// Warm implements Warmer: loads both levels like a Fill (preserving
// inclusion) without touching the statistics.
func (t *Multilevel) Warm(vpn uint64, pte *vm.PTE, now int64) {
	if evictedVPN, evicted := t.l2.Insert(vpn, pte, now); evicted {
		t.l1.Invalidate(evictedVPN)
	}
	t.l1.Insert(vpn, pte, now)
}

// Stats implements Device.
func (t *Multilevel) Stats() *Stats { return &t.stats }

// L1 exposes the upper-level bank for tests.
func (t *Multilevel) L1() *Bank { return t.l1 }

// L2 exposes the base bank for tests.
func (t *Multilevel) L2() *Bank { return t.l2 }

// CheckInclusion reports whether every L1 entry is present in the L2
// (the multi-level inclusion invariant). Tests call it after arbitrary
// operation sequences.
func (t *Multilevel) CheckInclusion() bool {
	for _, vpn := range t.l1.VPNs() {
		if _, ok := t.l2.Probe(vpn); !ok {
			return false
		}
	}
	return true
}
