package tlb

import (
	"testing"
	"testing/quick"
)

func TestMultilevelShieldingHit(t *testing.T) {
	as := testAS(t, 4096)
	d := NewMultilevel("M8", as, 8, 4, 128, 1)
	fill(t, d, 3)

	d.BeginCycle(1)
	r := d.Lookup(Request{VPN: 3}, 1)
	if r.Outcome != Hit || r.Extra != 0 {
		t.Fatalf("L1 hit: %+v, want extra 0", r)
	}
	s := d.Stats()
	if s.ShieldHits != 1 || s.ShieldMisses != 0 {
		t.Fatalf("shield counters: %+v", s)
	}
}

func TestMultilevelL1MissPenalty(t *testing.T) {
	as := testAS(t, 4096)
	d := NewMultilevel("M4", as, 4, 4, 128, 1)
	// Fill 5 pages; the 4-entry L1 can hold only 4.
	for vpn := uint64(1); vpn <= 5; vpn++ {
		fill(t, d, vpn)
	}
	// vpn 1 was LRU-evicted from the L1 but remains in the L2.
	if _, ok := d.L1().Probe(1); ok {
		t.Fatal("vpn 1 should have been evicted from the 4-entry L1")
	}
	d.BeginCycle(10)
	r := d.Lookup(Request{VPN: 1}, 10)
	if r.Outcome != Hit {
		t.Fatalf("L2 hit: %v", r.Outcome)
	}
	// Minimum L1-miss penalty is 2 cycles (Section 4.1).
	if r.Extra != 2 {
		t.Fatalf("L1 miss extra = %d, want 2", r.Extra)
	}
	// The entry was promoted into the L1.
	if _, ok := d.L1().Probe(1); !ok {
		t.Fatal("L2 hit did not promote into L1")
	}
}

func TestMultilevelL2PortQueueing(t *testing.T) {
	as := testAS(t, 4096)
	d := NewMultilevel("M16", as, 16, 4, 128, 1)
	// Two pages resident in L2 but not L1: force them out of the L1 by
	// filling 16 other pages at later times (LRU evicts the oldest).
	now := int64(1)
	mustFill := func(vpn uint64) {
		t.Helper()
		if _, err := d.Fill(vpn, now); err != nil {
			t.Fatal(err)
		}
		now++
	}
	mustFill(100)
	mustFill(101)
	for vpn := uint64(1); vpn <= 16; vpn++ {
		mustFill(vpn)
	}
	d.BeginCycle(20)
	r1 := d.Lookup(Request{VPN: 100}, 20)
	r2 := d.Lookup(Request{VPN: 101}, 20)
	if r1.Outcome != Hit || r2.Outcome != Hit {
		t.Fatalf("outcomes: %v %v", r1.Outcome, r2.Outcome)
	}
	if r1.Extra != 2 {
		t.Fatalf("first L1 miss extra = %d, want 2", r1.Extra)
	}
	// The second request queues behind the first at the single L2 port.
	if r2.Extra != 3 {
		t.Fatalf("queued L1 miss extra = %d, want 3", r2.Extra)
	}
	if d.Stats().QueueCycles != 1 {
		t.Fatalf("queue cycles = %d, want 1", d.Stats().QueueCycles)
	}
}

func TestMultilevelInclusionOnL2Eviction(t *testing.T) {
	as := testAS(t, 4096)
	d := NewMultilevel("M8", as, 8, 4, 16, 1) // small L2 to force evictions
	for vpn := uint64(0); vpn < 64; vpn++ {
		fill(t, d, vpn)
		if !d.CheckInclusion() {
			t.Fatalf("inclusion violated after filling vpn %d", vpn)
		}
	}
}

// Property: inclusion holds after any interleaving of fills and
// lookups, and the L1 never exceeds its capacity.
func TestMultilevelInclusionProperty(t *testing.T) {
	as := testAS(t, 4096)
	check := func(ops []uint16) bool {
		d := NewMultilevel("M4", as, 4, 4, 8, 3)
		now := int64(0)
		for _, op := range ops {
			now++
			vpn := uint64(op % 32)
			d.BeginCycle(now)
			r := d.Lookup(Request{VPN: vpn, Write: op&0x100 != 0}, now)
			if r.Outcome == Miss {
				if _, err := d.Fill(vpn, now); err != nil {
					return false
				}
			}
			if !d.CheckInclusion() || d.L1().Len() > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMultilevelStatusWriteThroughUsesL2Port(t *testing.T) {
	as := testAS(t, 4096)
	d := NewMultilevel("M8", as, 8, 4, 128, 1)
	// Fill 1..9 at increasing times: the 8-entry LRU L1 ends holding
	// 2..9, with vpn 1 only in the L2.
	for vpn := uint64(1); vpn <= 9; vpn++ {
		if _, err := d.Fill(vpn, int64(vpn)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := d.L1().Probe(1); ok {
		t.Fatal("setup: vpn 1 should have been evicted from the L1")
	}
	d.BeginCycle(30)
	r1 := d.Lookup(Request{VPN: 2, Write: true}, 30) // L1 hit + dirty write-through
	if r1.Outcome != Hit || r1.Extra != 0 {
		t.Fatalf("L1 hit with status write: %+v", r1)
	}
	r2 := d.Lookup(Request{VPN: 1}, 30) // L1 miss, queues behind the write-through
	if r2.Outcome != Hit {
		t.Fatalf("L1 miss outcome: %v", r2.Outcome)
	}
	if r2.Extra != 3 {
		t.Fatalf("L1 miss behind status write: extra = %d, want 3", r2.Extra)
	}
}

func TestMultilevelFlushAll(t *testing.T) {
	as := testAS(t, 4096)
	d := NewMultilevel("M8", as, 8, 4, 128, 1)
	fill(t, d, 1)
	d.FlushAll()
	if d.L1().Len() != 0 || d.L2().Len() != 0 {
		t.Fatal("FlushAll left entries")
	}
	d.BeginCycle(1)
	if r := d.Lookup(Request{VPN: 1}, 1); r.Outcome != Miss {
		t.Fatalf("post-flush lookup: %v", r.Outcome)
	}
}
