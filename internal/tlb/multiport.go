package tlb

import (
	"fmt"

	"hbat/internal/vm"
)

// Multiported is the brute-force design of Section 3.1 — every port
// reaches every entry of one fully-associative TLB — optionally
// augmented with the piggyback ports of Section 3.4, which let a
// request whose virtual page matches a translation already in progress
// this cycle share that translation instead of consuming a real port.
//
// Table 2 configurations: T4/T2/T1 (4/2/1 ports, no piggybacking) and
// PB2/PB1 (2 ports + 2 piggyback ports, 1 port + 3 piggyback ports).
type Multiported struct {
	name  string
	as    *vm.AddressSpace
	bank  *Bank
	ports int
	piggy int // piggyback ports
	stats Stats

	// per-cycle state
	cycle     int64
	portsUsed int
	piggyUsed int
	inflight  []inflightXlat
}

type inflightXlat struct {
	vpn  uint64
	pte  *vm.PTE // nil when the in-flight translation missed
	miss bool
}

// NewMultiported builds a multi-ported TLB. piggyPorts may be zero.
func NewMultiported(name string, as *vm.AddressSpace, entries, ports, piggyPorts int, repl Replacement, seed uint64) *Multiported {
	if ports < 1 {
		panic(fmt.Sprintf("tlb: %s needs at least one port", name))
	}
	return &Multiported{
		name:     name,
		as:       as,
		bank:     NewBank(entries, repl, seed),
		ports:    ports,
		piggy:    piggyPorts,
		inflight: make([]inflightXlat, 0, ports),
	}
}

// Name implements Device.
func (t *Multiported) Name() string { return t.name }

// Ports returns the real port count.
func (t *Multiported) Ports() int { return t.ports }

// PiggybackPorts returns the piggyback port count.
func (t *Multiported) PiggybackPorts() int { return t.piggy }

// BeginCycle implements Device.
func (t *Multiported) BeginCycle(now int64) {
	t.cycle = now
	t.portsUsed = 0
	t.piggyUsed = 0
	t.inflight = t.inflight[:0]
}

// Lookup implements Device.
func (t *Multiported) Lookup(req Request, now int64) Result {
	// Piggyback first: a same-page translation already in progress
	// this cycle can be shared without a real port. The VPN compare
	// runs in parallel with TLB access, so a piggybacked hit has no
	// extra latency (Section 3.4).
	if t.piggy > 0 && t.piggyUsed < t.piggy {
		for _, fl := range t.inflight {
			if fl.vpn != req.VPN {
				continue
			}
			t.piggyUsed++
			t.stats.Piggybacks++
			if fl.miss {
				// The in-flight access missed; the piggybacked request
				// shares the same walk.
				t.stats.Lookups++
				t.stats.Misses++
				return Result{Outcome: Miss}
			}
			t.stats.Lookups++
			t.stats.Hits++
			t.stats.observeExtra(0)
			t.bank.Touch(req.VPN, now)
			if statusWrite(fl.pte, req.Write) {
				t.stats.StatusWrites++
			}
			return Result{Outcome: Hit, PTE: fl.pte}
		}
	}
	if t.portsUsed >= t.ports {
		t.stats.NoPorts++
		return Result{Outcome: NoPort}
	}
	t.portsUsed++
	t.stats.Lookups++
	pte, ok := t.bank.Lookup(req.VPN, now)
	if !ok {
		t.stats.Misses++
		t.inflight = append(t.inflight, inflightXlat{vpn: req.VPN, miss: true})
		return Result{Outcome: Miss}
	}
	t.stats.Hits++
	t.stats.observeExtra(0)
	if statusWrite(pte, req.Write) {
		t.stats.StatusWrites++
	}
	t.inflight = append(t.inflight, inflightXlat{vpn: req.VPN, pte: pte})
	return Result{Outcome: Hit, PTE: pte}
}

// Fill implements Device.
func (t *Multiported) Fill(vpn uint64, now int64) (*vm.PTE, error) {
	pte, err := t.as.Walk(vpn)
	if err != nil {
		return nil, err
	}
	t.bank.Insert(vpn, pte, now)
	t.stats.Fills++
	return pte, nil
}

// Invalidate implements Device.
func (t *Multiported) Invalidate(vpn uint64) {
	t.bank.Invalidate(vpn)
}

// FlushAll implements Device.
func (t *Multiported) FlushAll() {
	t.bank.Flush()
	t.stats.Flushes++
}

// Warm implements Warmer: installs the translation like a Fill without
// touching the statistics.
func (t *Multiported) Warm(vpn uint64, pte *vm.PTE, now int64) {
	t.bank.Insert(vpn, pte, now)
}

// Stats implements Device.
func (t *Multiported) Stats() *Stats { return &t.stats }

// Bank exposes the underlying storage for tests.
func (t *Multiported) Bank() *Bank { return t.bank }
