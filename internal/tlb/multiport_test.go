package tlb

import (
	"testing"

	"hbat/internal/vm"
)

// fill installs vpn via the device's walk path.
func fill(t *testing.T, d Device, vpn uint64) {
	t.Helper()
	if _, err := d.Fill(vpn, 0); err != nil {
		t.Fatalf("Fill(%d): %v", vpn, err)
	}
}

func TestMultiportedPortLimit(t *testing.T) {
	as := testAS(t, 4096)
	d := NewMultiported("T2", as, 128, 2, 0, Random, 1)
	fill(t, d, 1)
	fill(t, d, 2)
	fill(t, d, 3)

	d.BeginCycle(1)
	for i, want := range []Outcome{Hit, Hit, NoPort, NoPort} {
		r := d.Lookup(Request{VPN: uint64(i + 1)}, 1)
		if r.Outcome != want {
			t.Fatalf("lookup %d: outcome %v, want %v", i, r.Outcome, want)
		}
	}
	// Ports replenish next cycle.
	d.BeginCycle(2)
	if r := d.Lookup(Request{VPN: 3}, 2); r.Outcome != Hit {
		t.Fatalf("next-cycle lookup: %v", r.Outcome)
	}
}

func TestMultiportedMissThenFill(t *testing.T) {
	as := testAS(t, 4096)
	d := NewMultiported("T1", as, 128, 1, 0, Random, 1)
	d.BeginCycle(1)
	if r := d.Lookup(Request{VPN: 42}, 1); r.Outcome != Miss {
		t.Fatalf("cold lookup: %v, want miss", r.Outcome)
	}
	fill(t, d, 42)
	d.BeginCycle(2)
	r := d.Lookup(Request{VPN: 42}, 2)
	if r.Outcome != Hit || r.PTE == nil || r.Extra != 0 {
		t.Fatalf("post-fill lookup: %+v", r)
	}
}

func TestPiggybackSharesInFlightTranslation(t *testing.T) {
	as := testAS(t, 4096)
	d := NewMultiported("PB1", as, 128, 1, 3, Random, 1)
	fill(t, d, 7)

	d.BeginCycle(1)
	if r := d.Lookup(Request{VPN: 7}, 1); r.Outcome != Hit {
		t.Fatal("port lookup should hit")
	}
	// Same page: piggybacks (no port needed), zero extra latency.
	for i := 0; i < 3; i++ {
		r := d.Lookup(Request{VPN: 7}, 1)
		if r.Outcome != Hit || r.Extra != 0 {
			t.Fatalf("piggyback %d: %+v", i, r)
		}
	}
	// Piggyback ports exhausted (3 used).
	if r := d.Lookup(Request{VPN: 7}, 1); r.Outcome != NoPort {
		t.Fatalf("4th piggyback: %v, want NoPort", r.Outcome)
	}
	if got := d.Stats().Piggybacks; got != 3 {
		t.Fatalf("piggyback count = %d, want 3", got)
	}
}

func TestPiggybackDifferentPageGetsNoPort(t *testing.T) {
	as := testAS(t, 4096)
	d := NewMultiported("PB1", as, 128, 1, 3, Random, 1)
	fill(t, d, 7)
	fill(t, d, 8)

	d.BeginCycle(1)
	if r := d.Lookup(Request{VPN: 7}, 1); r.Outcome != Hit {
		t.Fatal("port lookup should hit")
	}
	// Different page: cannot piggyback, and the single port is busy.
	if r := d.Lookup(Request{VPN: 8}, 1); r.Outcome != NoPort {
		t.Fatalf("different page: %v, want NoPort", r.Outcome)
	}
}

func TestPiggybackOnMissSharesTheWalk(t *testing.T) {
	as := testAS(t, 4096)
	d := NewMultiported("PB2", as, 128, 2, 2, Random, 1)
	d.BeginCycle(1)
	if r := d.Lookup(Request{VPN: 9}, 1); r.Outcome != Miss {
		t.Fatal("cold lookup should miss")
	}
	// Same page while the missing translation is in flight: the
	// piggybacked request reports the same miss (and shares the walk).
	if r := d.Lookup(Request{VPN: 9}, 1); r.Outcome != Miss {
		t.Fatalf("piggyback on miss: %v, want Miss", r.Outcome)
	}
	if d.Stats().Piggybacks != 1 {
		t.Fatalf("piggybacks = %d, want 1", d.Stats().Piggybacks)
	}
}

func TestStatusWriteTracking(t *testing.T) {
	as := testAS(t, 4096)
	d := NewMultiported("T4", as, 128, 4, 0, Random, 1)
	fill(t, d, 5)

	d.BeginCycle(1)
	d.Lookup(Request{VPN: 5}, 1) // first reference sets Ref
	if got := d.Stats().StatusWrites; got != 1 {
		t.Fatalf("status writes after first ref = %d, want 1", got)
	}
	d.BeginCycle(2)
	d.Lookup(Request{VPN: 5}, 2) // second read: no change
	if got := d.Stats().StatusWrites; got != 1 {
		t.Fatalf("status writes after re-read = %d, want 1", got)
	}
	d.BeginCycle(3)
	d.Lookup(Request{VPN: 5, Write: true}, 3) // first write sets Dirty
	if got := d.Stats().StatusWrites; got != 2 {
		t.Fatalf("status writes after first write = %d, want 2", got)
	}
	pte, _ := as.Lookup(5)
	if !pte.Ref || !pte.Dirty {
		t.Fatalf("PTE status not propagated: %+v", pte)
	}
}

func TestFillOutsideRegionsFails(t *testing.T) {
	as := vm.NewAddressSpace(4096) // no regions
	d := NewMultiported("T1", as, 128, 1, 0, Random, 1)
	if _, err := d.Fill(123, 0); err == nil {
		t.Fatal("Fill of unmapped page succeeded")
	}
}
