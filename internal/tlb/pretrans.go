package tlb

import (
	"hbat/internal/isa"
	"hbat/internal/vm"
)

// Pretranslation is the design of Sections 3.5/4.1 (configuration P8):
// translations are attached to base-register *values* at their first
// dereference and reused on later dereferences of the same pointer. A
// small multi-ported pretranslation cache, tagged by the base-register
// identifier concatenated with the upper four bits of a load's offset,
// shields a single-ported base TLB. Pointer-creating arithmetic
// propagates attached translations to the result register; any other
// write to a register drops them. Coherence is enforced by flushing the
// pretranslation cache whenever a base-TLB entry is replaced.
type Pretranslation struct {
	name    string
	as      *vm.AddressSpace
	cache   []preEntry
	ports   int
	base    *Bank
	offMask uint8
	stats   Stats

	baseFree  int64 // next free cycle of the single base-TLB port
	portsUsed int
	clock     int64 // LRU clock for the pretranslation cache
}

type preEntry struct {
	valid   bool
	reg     isa.Reg
	offHi   uint8
	vpn     uint64
	pte     *vm.PTE
	lastUse int64
}

// NewPretranslation builds a pretranslation design with a cacheEntries-
// entry pretranslation cache (LRU, ports access ports) over a single-
// ported base TLB of baseEntries entries (random replacement).
func NewPretranslation(name string, as *vm.AddressSpace, cacheEntries, ports, baseEntries int, seed uint64) *Pretranslation {
	return &Pretranslation{
		name:    name,
		as:      as,
		cache:   make([]preEntry, cacheEntries),
		ports:   ports,
		base:    NewBank(baseEntries, Random, seed),
		offMask: 0xF,
	}
}

// SetOffsetTagBits restricts how many of the four offset bits in the
// request participate in the pretranslation tag. The paper uses four
// (Section 4.1: "the upper 4 bits of the offset of a load"); zero
// degenerates to one pretranslation per register, the original
// branch-address-cache organization. Returns the receiver for chaining.
func (t *Pretranslation) SetOffsetTagBits(n int) *Pretranslation {
	if n < 0 {
		n = 0
	}
	if n > 4 {
		n = 4
	}
	t.offMask = uint8(0xF >> (4 - n))
	return t
}

// Name implements Device.
func (t *Pretranslation) Name() string { return t.name }

// BeginCycle implements Device.
func (t *Pretranslation) BeginCycle(now int64) { t.portsUsed = 0 }

func (t *Pretranslation) reserveBasePort(arrive int64) int64 {
	start := arrive
	if t.baseFree > start {
		start = t.baseFree
	}
	t.baseFree = start + 1
	return start
}

func (t *Pretranslation) find(reg isa.Reg, offHi uint8) *preEntry {
	for i := range t.cache {
		e := &t.cache[i]
		if e.valid && e.reg == reg && e.offHi == offHi {
			return e
		}
	}
	return nil
}

// attach inserts (or refreshes) a pretranslation, evicting LRU.
func (t *Pretranslation) attach(reg isa.Reg, offHi uint8, vpn uint64, pte *vm.PTE) {
	t.clock++
	if e := t.find(reg, offHi); e != nil {
		e.vpn, e.pte, e.lastUse = vpn, pte, t.clock
		return
	}
	victim := 0
	for i := range t.cache {
		if !t.cache[i].valid {
			victim = i
			break
		}
		if t.cache[i].lastUse < t.cache[victim].lastUse {
			victim = i
		}
	}
	t.cache[victim] = preEntry{valid: true, reg: reg, offHi: offHi, vpn: vpn, pte: pte, lastUse: t.clock}
}

// Lookup implements Device.
func (t *Pretranslation) Lookup(req Request, now int64) Result {
	if t.portsUsed >= t.ports {
		t.stats.NoPorts++
		return Result{Outcome: NoPort}
	}
	t.portsUsed++
	t.stats.Lookups++

	// The pretranslation is read in parallel with register-file access
	// and is usable only if the access's virtual page matches the page
	// the translation was attached for (Section 3.5).
	if req.Base < isa.NumIntRegs {
		if e := t.find(req.Base, req.OffHi&t.offMask); e != nil && e.vpn == req.VPN {
			t.clock++
			e.lastUse = t.clock
			t.stats.Hits++
			t.stats.ShieldHits++
			t.stats.observeExtra(0)
			if statusWrite(e.pte, req.Write) {
				t.stats.StatusWrites++
				t.reserveBasePort(now + 1)
			}
			return Result{Outcome: Hit, PTE: e.pte}
		}
	}
	t.stats.ShieldMisses++

	// A pretranslation miss is not detected until the cycle after
	// address generation; the request then needs the single-ported
	// base TLB, where it may queue (Section 4.1).
	start := t.reserveBasePort(now + 1)
	extra := start - now
	t.stats.QueueCycles += uint64(start - (now + 1))

	pte, ok := t.base.Lookup(req.VPN, start)
	if !ok {
		t.stats.Misses++
		return Result{Outcome: Miss}
	}
	t.stats.Hits++
	t.stats.observeExtra(extra)
	if statusWrite(pte, req.Write) {
		t.stats.StatusWrites++
	}
	// Attach the result to the base register value.
	if req.Base < isa.NumIntRegs {
		t.attach(req.Base, req.OffHi&t.offMask, req.VPN, pte)
	}
	return Result{Outcome: Hit, Extra: extra, PTE: pte}
}

// Fill implements Device. Replacing a base-TLB entry flushes the
// pretranslation cache (the paper's coherence rule), so an attached
// translation can never outlive its base-TLB entry.
func (t *Pretranslation) Fill(vpn uint64, now int64) (*vm.PTE, error) {
	pte, err := t.as.Walk(vpn)
	if err != nil {
		return nil, err
	}
	if _, evicted := t.base.Insert(vpn, pte, now); evicted {
		t.flushCache()
	}
	t.stats.Fills++
	return pte, nil
}

// Invalidate implements Device: removing a base-TLB entry flushes the
// pretranslation cache, the same coherence rule as replacement.
func (t *Pretranslation) Invalidate(vpn uint64) {
	if t.base.Invalidate(vpn) {
		t.flushCache()
	}
}

func (t *Pretranslation) flushCache() {
	for i := range t.cache {
		t.cache[i] = preEntry{}
	}
	t.stats.Flushes++
}

// FlushAll implements Device.
func (t *Pretranslation) FlushAll() {
	t.flushCache()
	t.base.Flush()
}

// Warm implements Warmer: installs the translation into the base TLB
// like a Fill without touching the statistics. The coherence rule still
// applies — a base-TLB eviction empties the pretranslation cache — but
// the quiet flush is uncounted. Pretranslations themselves are not
// warmed: they bind to register *values*, which the warm-up replay does
// not carry.
func (t *Pretranslation) Warm(vpn uint64, pte *vm.PTE, now int64) {
	if _, evicted := t.base.Insert(vpn, pte, now); evicted {
		for i := range t.cache {
			t.cache[i] = preEntry{}
		}
	}
}

// Stats implements Device.
func (t *Pretranslation) Stats() *Stats { return &t.stats }

// Propagate implements RegisterTracker: dst was produced by pointer
// arithmetic on src1 (or src2); pretranslations attached to the first
// source that has any are copied to dst. Copies are reinserted at the
// LRU tail, which the paper notes improves cache management.
func (t *Pretranslation) Propagate(dst, src1, src2 isa.Reg) {
	if dst >= isa.NumIntRegs || dst == isa.Zero {
		return
	}
	src := isa.Reg(255)
	if src1 < isa.NumIntRegs && t.hasEntries(src1) {
		src = src1
	} else if src2 < isa.NumIntRegs && t.hasEntries(src2) {
		src = src2
	}
	if src == 255 {
		t.InvalidateReg(dst)
		return
	}
	if src == dst {
		// In-place pointer arithmetic (p += 8): the attached
		// translations stay with the register; the VPN check at the
		// next dereference validates them.
		return
	}
	t.InvalidateReg(dst)
	// Copy src's entries to dst. Collect first: attach may evict.
	var copies []preEntry
	for i := range t.cache {
		e := &t.cache[i]
		if e.valid && e.reg == src {
			copies = append(copies, *e)
		}
	}
	for _, c := range copies {
		t.attach(dst, c.offHi, c.vpn, c.pte)
	}
}

// InvalidateReg implements RegisterTracker: dst received a value not
// derived from a tracked pointer, so any attached translations die.
func (t *Pretranslation) InvalidateReg(dst isa.Reg) {
	if dst >= isa.NumIntRegs {
		return
	}
	for i := range t.cache {
		if t.cache[i].valid && t.cache[i].reg == dst {
			t.cache[i] = preEntry{}
		}
	}
}

func (t *Pretranslation) hasEntries(r isa.Reg) bool {
	for i := range t.cache {
		if t.cache[i].valid && t.cache[i].reg == r {
			return true
		}
	}
	return false
}

// Base exposes the base TLB bank for tests.
func (t *Pretranslation) Base() *Bank { return t.base }

// CacheLen reports how many pretranslations are currently attached.
func (t *Pretranslation) CacheLen() int {
	n := 0
	for i := range t.cache {
		if t.cache[i].valid {
			n++
		}
	}
	return n
}
