package tlb

import (
	"testing"
	"testing/quick"

	"hbat/internal/isa"
	"hbat/internal/vm"
)

func newP8(t *testing.T) *Pretranslation {
	t.Helper()
	return NewPretranslation("P8", testAS(t, 4096), 8, 4, 128, 1)
}

func TestPretranslationAttachAndReuse(t *testing.T) {
	d := newP8(t)
	fill(t, d, 10)

	// First dereference through base register $t0: pretranslation cache
	// misses, base TLB hits with >=1 extra cycle, translation attaches.
	d.BeginCycle(1)
	r := d.Lookup(Request{VPN: 10, Base: isa.T0, Load: true}, 1)
	if r.Outcome != Hit || r.Extra < 1 {
		t.Fatalf("first dereference: %+v, want hit with extra >= 1", r)
	}
	if d.CacheLen() != 1 {
		t.Fatalf("cache len = %d, want 1", d.CacheLen())
	}

	// Second dereference: shielded, zero extra latency.
	d.BeginCycle(2)
	r = d.Lookup(Request{VPN: 10, Base: isa.T0, Load: true}, 2)
	if r.Outcome != Hit || r.Extra != 0 {
		t.Fatalf("reuse: %+v, want hit with extra 0", r)
	}
	if d.Stats().ShieldHits != 1 {
		t.Fatalf("shield hits = %d, want 1", d.Stats().ShieldHits)
	}
}

func TestPretranslationVPNMismatchFallsThrough(t *testing.T) {
	d := newP8(t)
	fill(t, d, 10)
	fill(t, d, 11)

	d.BeginCycle(1)
	d.Lookup(Request{VPN: 10, Base: isa.T0, Load: true}, 1)
	// The pointer strode to the next page: attached VPN no longer
	// matches, so the base TLB is consulted again (and re-attaches).
	d.BeginCycle(2)
	r := d.Lookup(Request{VPN: 11, Base: isa.T0, Load: true}, 2)
	if r.Outcome != Hit || r.Extra < 1 {
		t.Fatalf("strided dereference: %+v", r)
	}
	d.BeginCycle(3)
	r = d.Lookup(Request{VPN: 11, Base: isa.T0, Load: true}, 3)
	if r.Extra != 0 {
		t.Fatalf("re-attached dereference: %+v", r)
	}
}

func TestPretranslationOffsetBitsDistinguishEntries(t *testing.T) {
	d := newP8(t)
	fill(t, d, 10)
	fill(t, d, 20)

	// Same base register, different offset-high bits: two entries (a
	// single pointer may reference multiple pages, Section 3.5).
	d.BeginCycle(1)
	d.Lookup(Request{VPN: 10, Base: isa.T0, OffHi: 0, Load: true}, 1)
	d.BeginCycle(2)
	d.Lookup(Request{VPN: 20, Base: isa.T0, OffHi: 3, Load: true}, 2)
	if d.CacheLen() != 2 {
		t.Fatalf("cache len = %d, want 2", d.CacheLen())
	}
	d.BeginCycle(3)
	if r := d.Lookup(Request{VPN: 10, Base: isa.T0, OffHi: 0, Load: true}, 3); r.Extra != 0 {
		t.Fatalf("entry 0 lost: %+v", r)
	}
	d.BeginCycle(4)
	if r := d.Lookup(Request{VPN: 20, Base: isa.T0, OffHi: 3, Load: true}, 4); r.Extra != 0 {
		t.Fatalf("entry 3 lost: %+v", r)
	}
}

func TestPretranslationPropagation(t *testing.T) {
	d := newP8(t)
	fill(t, d, 10)
	d.BeginCycle(1)
	d.Lookup(Request{VPN: 10, Base: isa.T0, Load: true}, 1)

	// q := p + 8 propagates p's pretranslation to q.
	d.Propagate(isa.T1, isa.T0, 255)
	d.BeginCycle(2)
	r := d.Lookup(Request{VPN: 10, Base: isa.T1, Load: true}, 2)
	if r.Outcome != Hit || r.Extra != 0 {
		t.Fatalf("dereference through copied pointer: %+v", r)
	}

	// Overwriting q with an unrelated value drops its entries.
	d.InvalidateReg(isa.T1)
	d.BeginCycle(3)
	if r := d.Lookup(Request{VPN: 10, Base: isa.T1, Load: true}, 3); r.Extra == 0 {
		t.Fatalf("invalidated pointer still shielded: %+v", r)
	}
}

func TestPretranslationInPlaceArithmeticKeepsEntries(t *testing.T) {
	d := newP8(t)
	fill(t, d, 10)
	d.BeginCycle(1)
	d.Lookup(Request{VPN: 10, Base: isa.T0, Load: true}, 1)

	// p += 8 (dst == src): the attachment survives; the VPN check
	// validates it on the next dereference.
	d.Propagate(isa.T0, isa.T0, 255)
	d.BeginCycle(2)
	if r := d.Lookup(Request{VPN: 10, Base: isa.T0, Load: true}, 2); r.Extra != 0 {
		t.Fatalf("in-place arithmetic lost the attachment: %+v", r)
	}
}

func TestPretranslationPropagateWithoutSourceInvalidatesDest(t *testing.T) {
	d := newP8(t)
	fill(t, d, 10)
	d.BeginCycle(1)
	d.Lookup(Request{VPN: 10, Base: isa.T2, Load: true}, 1)
	// T2 has an entry; now T2 = T3 + T4 where neither source has one.
	d.Propagate(isa.T2, isa.T3, isa.T4)
	if d.hasEntries(isa.T2) {
		t.Fatal("dest entries survived pointer-free arithmetic")
	}
}

func TestPretranslationFlushOnBaseReplacement(t *testing.T) {
	as := testAS(t, 4096)
	d := NewPretranslation("P8", as, 8, 4, 4, 1) // tiny base TLB
	fill(t, d, 1)
	d.BeginCycle(1)
	d.Lookup(Request{VPN: 1, Base: isa.T0, Load: true}, 1)
	if d.CacheLen() != 1 {
		t.Fatal("no attachment")
	}
	// Fill 4 more pages: the 4-entry base TLB must replace, which
	// flushes the pretranslation cache (the paper's coherence rule).
	for vpn := uint64(2); vpn <= 5; vpn++ {
		fill(t, d, vpn)
	}
	if d.CacheLen() != 0 {
		t.Fatalf("cache len = %d after base replacement, want 0 (flushed)", d.CacheLen())
	}
	if d.Stats().Flushes == 0 {
		t.Fatal("no flush recorded")
	}
}

func TestPretranslationLRUCapacity(t *testing.T) {
	d := newP8(t)
	for vpn := uint64(1); vpn <= 12; vpn++ {
		fill(t, d, vpn)
	}
	for i := 0; i < 12; i++ {
		d.BeginCycle(int64(i + 1))
		d.Lookup(Request{VPN: uint64(i + 1), Base: isa.Reg(i % 16), OffHi: uint8(i / 16), Load: true}, int64(i+1))
	}
	if d.CacheLen() != 8 {
		t.Fatalf("cache len = %d, want capacity 8", d.CacheLen())
	}
}

// Property: a pretranslation hit never returns a PTE for the wrong
// page — the VPN check must hold under arbitrary attach/propagate/
// invalidate sequences.
func TestPretranslationSoundnessProperty(t *testing.T) {
	check := func(ops []uint16) bool {
		as := vm.NewAddressSpace(4096)
		as.AddRegion(vm.Region{Name: "all", Base: 0, Size: 1 << 40, Perm: vm.PermRW})
		d := NewPretranslation("P8", as, 8, 4, 64, 5)
		now := int64(0)
		for _, op := range ops {
			now++
			d.BeginCycle(now)
			base := isa.Reg(op % 8)
			vpn := uint64((op >> 3) % 16)
			switch (op >> 8) % 4 {
			case 0, 1:
				r := d.Lookup(Request{VPN: vpn, Base: base, Load: true}, now)
				if r.Outcome == Miss {
					if _, err := d.Fill(vpn, now); err != nil {
						return false
					}
				} else if r.Outcome == Hit {
					if r.PTE == nil || r.PTE.VPN != vpn {
						return false // wrong translation!
					}
				}
			case 2:
				d.Propagate(base, isa.Reg((op>>5)%8), 255)
			case 3:
				d.InvalidateReg(base)
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
