// Package tlb implements the paper's high-bandwidth address-translation
// mechanisms: multi-ported TLBs, interleaved TLBs (bit- and XOR-select),
// multi-level TLBs with an LRU L1 and inclusion, piggyback ports, and
// pretranslation caches. Every design sits behind the Device interface,
// which models per-cycle port arbitration, queueing at busy ports, and
// the latency each shielding mechanism adds or hides, exactly as in
// Section 3 and Table 2 of Austin & Sohi (ISCA '96).
package tlb

import (
	"hbat/internal/isa"
	"hbat/internal/vm"
)

// Outcome classifies the device's answer to one translation request.
type Outcome uint8

const (
	// Hit: the translation was serviced; Result.Extra gives the
	// latency beyond the (fully overlapped) cache access.
	Hit Outcome = iota
	// NoPort: every usable port is busy this cycle and no piggyback
	// match exists; the requester must retry next cycle.
	NoPort
	// Miss: the translation is not cached anywhere; a page-table walk
	// is required. The paper services walks only non-speculatively,
	// with a fixed 30-cycle latency after earlier instructions
	// complete; the core enforces that policy and then calls Fill.
	Miss
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case NoPort:
		return "noport"
	case Miss:
		return "miss"
	}
	return "outcome(?)"
}

// Request is one address-translation request presented to a device.
// The core presents each cycle's requests in instruction age order, so
// port arbitration inside a device implicitly favors the earliest
// issued instruction, per Section 4.1.
type Request struct {
	VPN   uint64
	Write bool // store: needs the dirty bit set
	// Base and OffHi identify the access for pretranslation designs:
	// the base register and the upper four bits of a load's offset
	// (zero for any other instruction), per Section 4.1.
	Base  isa.Reg
	OffHi uint8
	// Load distinguishes loads (whose offset bits form the
	// pretranslation tag) from other memory ops.
	Load bool
}

// Result is the device's answer.
type Result struct {
	Outcome Outcome
	// Extra is the number of cycles of translation latency visible
	// beyond the overlapped cache access (valid for Hit).
	Extra int64
	// PTE is the translation (valid for Hit).
	PTE *vm.PTE
}

// Stats aggregates a device's activity.
type Stats struct {
	Lookups      uint64 // requests that received a definitive answer (hit or miss)
	Hits         uint64
	Misses       uint64 // base-TLB misses (page-table walks needed)
	NoPorts      uint64 // rejections for want of a port
	Piggybacks   uint64 // hits satisfied by sharing an in-flight translation
	ShieldHits   uint64 // hits serviced by a shielding structure (L1 TLB / pretranslation cache)
	ShieldMisses uint64 // shielding-structure misses forwarded to the base TLB
	QueueCycles  uint64 // total cycles requests spent queued for a base-TLB port
	ExtraCycles  uint64 // total extra hit-latency cycles (includes queueing)
	StatusWrites uint64 // reference/dirty write-throughs sent to the base TLB
	Fills        uint64 // translations installed after page-table walks
	Flushes      uint64 // full flushes (pretranslation coherence)

	// ExtraHist is the distribution of per-hit extra latency: bucket i
	// counts hits answered with Extra == i cycles; the last bucket
	// collects everything slower. ExtraCycles is its weighted sum.
	ExtraHist [8]uint64
}

// observeExtra records one hit's extra translation latency.
func (s *Stats) observeExtra(extra int64) {
	s.ExtraCycles += uint64(extra)
	i := int(extra)
	if i < 0 {
		i = 0
	}
	if i >= len(s.ExtraHist) {
		i = len(s.ExtraHist) - 1
	}
	s.ExtraHist[i]++
}

// MissRate returns base-TLB misses per definitive lookup.
func (s *Stats) MissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Lookups)
}

// Device is a complete address-translation mechanism. BeginCycle must
// be called once per simulated cycle before any Lookup for that cycle.
// Lookup answers a request; on a Miss the core performs the walk policy
// and then calls Fill, after which a retried Lookup is guaranteed to
// find the entry (absent intervening replacement).
type Device interface {
	// Name returns the design mnemonic (T4, I8, M8, PB2, ...).
	Name() string
	// BeginCycle resets per-cycle port state.
	BeginCycle(now int64)
	// Lookup services one translation request at cycle now.
	Lookup(req Request, now int64) Result
	// Fill installs the translation for vpn after a page-table walk,
	// returning the PTE or an error from the walk itself.
	Fill(vpn uint64, now int64) (*vm.PTE, error)
	// Invalidate removes any cached translation of vpn from every
	// level of the device (a TLB consistency operation / shootdown).
	// Designs enforcing multi-level inclusion need not probe their
	// upper level separately — the paper's argument for inclusion
	// (Section 3.3) — but must leave no stale entry anywhere.
	Invalidate(vpn uint64)
	// FlushAll empties every caching structure in the device.
	FlushAll()
	// Stats exposes the device's counters.
	Stats() *Stats
}

// Warmer is implemented by designs that support functional warm-up: Warm
// installs the translation for vpn into the device's caching structures
// exactly as a Fill would, but records no statistics, claims no port, and
// charges no latency. The two-phase fast-forward mode replays the
// functional phase's distinct-page reference stream through Warm (oldest
// first, with negative recency stamps) so the measurement window starts
// with a realistically populated TLB and zeroed counters.
type Warmer interface {
	Warm(vpn uint64, pte *vm.PTE, now int64)
}

// RegisterTracker is implemented by designs that attach translations to
// register values (pretranslation). The core calls these hooks at
// commit so squashed wrong-path instructions never perturb the cache.
type RegisterTracker interface {
	// Propagate records that dst was produced by pointer arithmetic on
	// src1 (or src2): any pretranslation attached to the first source
	// that has one is copied to dst.
	Propagate(dst, src1, src2 isa.Reg)
	// InvalidateReg records that dst received a value unrelated to any
	// tracked pointer (load result, immediate materialization, ...).
	InvalidateReg(dst isa.Reg)
}

// statusWrite updates the authoritative PTE status bits for an access
// that was serviced by a shielding structure and reports whether a
// write-through to the base TLB was required (first reference or first
// write), which costs base-TLB port bandwidth but no request latency
// (Section 4.1).
func statusWrite(pte *vm.PTE, write bool) bool {
	needed := !pte.Ref || (write && !pte.Dirty)
	pte.Ref = true
	if write {
		pte.Dirty = true
	}
	return needed
}
