package tlb

import (
	"testing"

	"hbat/internal/isa"
	"hbat/internal/vm"
)

// TestAllDesignsWarm: every Table 2 design must support functional
// warm-up — installing translations silently (no stats) such that the
// measurement window's first lookup of a recently warmed page hits.
func TestAllDesignsWarm(t *testing.T) {
	for _, name := range DesignOrder {
		name := name
		t.Run(name, func(t *testing.T) {
			as := vm.NewAddressSpace(4096)
			as.AddRegion(vm.Region{Name: "data", Base: 0, Size: 64 << 20, Perm: vm.PermRW})
			spec, err := LookupSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			dev := spec.Build(as, 1)
			w, ok := dev.(Warmer)
			if !ok {
				t.Fatalf("%s does not implement Warmer", name)
			}

			// Warm more pages than any structure holds (evictions must
			// stay silent too), with the negative stamps the fast-forward
			// replay uses. The last pages warmed are the most recent.
			const nWarm = 200
			for i := 0; i < nWarm; i++ {
				vpn := uint64(i)
				pte, err := as.Walk(vpn)
				if err != nil {
					t.Fatal(err)
				}
				w.Warm(vpn, pte, int64(i)-nWarm)
			}
			if got := *dev.Stats(); got != (Stats{}) {
				t.Fatalf("%s: Warm perturbed stats: %+v", name, got)
			}

			// The most recently warmed page must hit the first
			// measurement-window lookup.
			dev.BeginCycle(1)
			res := dev.Lookup(Request{VPN: nWarm - 1, Base: isa.Reg(255)}, 1)
			if res.Outcome != Hit {
				t.Fatalf("%s: lookup of most recently warmed page = %v, want hit", name, res.Outcome)
			}
			s := dev.Stats()
			if s.Misses != 0 || s.Hits != 1 {
				t.Fatalf("%s: stats after warmed hit: %+v", name, *s)
			}
		})
	}
}

// TestBankWarmRecency: warmed entries (negative stamps) must lose LRU
// replacement against anything the measurement window touched.
func TestBankWarmRecency(t *testing.T) {
	as := vm.NewAddressSpace(4096)
	as.AddRegion(vm.Region{Name: "data", Base: 0, Size: 1 << 20, Perm: vm.PermRW})
	b := NewBank(2, LRU, 1)
	p0, _ := as.Walk(0)
	p1, _ := as.Walk(1)
	p2, _ := as.Walk(2)
	b.Insert(0, p0, -2)
	b.Insert(1, p1, -1)
	// The window touches page 1, then fills page 2: page 0 (stale warm)
	// must be the victim.
	b.Lookup(1, 5)
	b.Insert(2, p2, 6)
	if _, ok := b.Probe(1); !ok {
		t.Fatal("recently touched warm entry was evicted")
	}
	if _, ok := b.Probe(0); ok {
		t.Fatal("stale warm entry survived")
	}
}
