// Package trace captures and replays data-reference traces. A trace is
// the sequence of (virtual address, read/write) data references a
// program makes, in program order — the input that drove trace-driven
// TLB studies of the paper's era (e.g. Chen/Borg/Jouppi [CBJ92], which
// Figure 6 methodologically follows). Captured traces replay into the
// functional TLB models orders of magnitude faster than re-simulating,
// and export to other tools.
//
// The on-disk format is compact and streaming: a small header, then one
// varint-encoded record per reference holding the zig-zag delta from
// the previous address (data references are strongly local, so deltas
// are short) with the read/write flag folded into bit 0.
package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hbat/internal/emu"
	"hbat/internal/prog"
)

// Record is one data reference.
type Record struct {
	Addr  uint64
	Write bool
}

// magic identifies the trace format ("HBT1").
var magic = [4]byte{'H', 'B', 'T', '1'}

// Header describes a trace.
type Header struct {
	Workload string
	PageSize uint64
}

// Writer streams records to an io.Writer.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint64
	count    uint64
	header   bool
	hdr      Header
}

// NewWriter creates a trace writer; the header is emitted on the first
// record (or on Close for an empty trace).
func NewWriter(w io.Writer, hdr Header) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10), hdr: hdr}
}

func (w *Writer) writeHeader() error {
	if w.header {
		return nil
	}
	w.header = true
	if _, err := w.w.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], w.hdr.PageSize)
	if _, err := w.w.Write(buf[:n]); err != nil {
		return err
	}
	name := []byte(w.hdr.Workload)
	n = binary.PutUvarint(buf[:], uint64(len(name)))
	if _, err := w.w.Write(buf[:n]); err != nil {
		return err
	}
	_, err := w.w.Write(name)
	return err
}

// zigzag encodes a signed delta as unsigned.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Add appends one record.
func (w *Writer) Add(r Record) error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	delta := zigzag(int64(r.Addr - w.prevAddr))
	v := delta << 1
	if r.Write {
		v |= 1
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	if _, err := w.w.Write(buf[:n]); err != nil {
		return err
	}
	w.prevAddr = r.Addr
	w.count++
	return nil
}

// Count reports how many records have been written.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes the writer (emitting the header even if empty).
func (w *Writer) Close() error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader streams records from an io.Reader.
type Reader struct {
	r        *bufio.Reader
	prevAddr uint64
	hdr      Header
}

// NewReader opens a trace, reading and validating its header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("trace: bad magic (not an HBT1 trace)")
	}
	ps, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading page size: %w", err)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 4096 {
		return nil, errors.New("trace: implausible workload-name length")
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	return &Reader{r: br, hdr: Header{Workload: string(name), PageSize: ps}}, nil
}

// Header returns the trace's header.
func (r *Reader) Header() Header { return r.hdr }

// Next returns the next record, or io.EOF at the end of the trace.
func (r *Reader) Next() (Record, error) {
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: %w", err)
	}
	write := v&1 != 0
	addr := r.prevAddr + uint64(unzigzag(v>>1))
	r.prevAddr = addr
	return Record{Addr: addr, Write: write}, nil
}

// ForEach streams every remaining record through f, stopping on error.
func (r *Reader) ForEach(f func(Record) error) error {
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := f(rec); err != nil {
			return err
		}
	}
}

// Capture functionally executes p and writes its data-reference trace.
// maxRefs caps the trace length (0 = the whole run).
func Capture(p *prog.Program, pageSize uint64, w io.Writer, maxRefs uint64) (uint64, error) {
	return CaptureContext(context.Background(), p, pageSize, w, maxRefs)
}

// CaptureContext is Capture with cancellation: a cancelled ctx stops
// the functional run promptly (checked every few thousand steps) and
// returns ctx.Err().
func CaptureContext(ctx context.Context, p *prog.Program, pageSize uint64, w io.Writer, maxRefs uint64) (uint64, error) {
	m, err := emu.New(p, pageSize)
	if err != nil {
		return 0, err
	}
	done := ctx.Done()
	steps := 0
	tw := NewWriter(w, Header{Workload: p.Name, PageSize: pageSize})
	var captureErr error
	m.OnMemRef = func(vaddr uint64, write bool) {
		if captureErr != nil {
			return
		}
		if maxRefs > 0 && tw.Count() >= maxRefs {
			return
		}
		captureErr = tw.Add(Record{Addr: vaddr, Write: write})
	}
	for !m.Halted {
		if maxRefs > 0 && tw.Count() >= maxRefs {
			break
		}
		if done != nil && steps&4095 == 0 {
			select {
			case <-done:
				return tw.Count(), ctx.Err()
			default:
			}
		}
		steps++
		if err := m.Step(); err != nil {
			return tw.Count(), err
		}
		if captureErr != nil {
			return tw.Count(), captureErr
		}
	}
	return tw.Count(), tw.Close()
}
