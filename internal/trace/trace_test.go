package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"hbat/internal/emu"
	"hbat/internal/prog"
	"hbat/internal/tlb"
	"hbat/internal/workload"
)

func TestRoundTripProperty(t *testing.T) {
	check := func(addrs []uint32, writes []bool) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf, Header{Workload: "prop", PageSize: 4096})
		var recs []Record
		for i, a := range addrs {
			r := Record{Addr: uint64(a) * 3}
			if i < len(writes) {
				r.Write = writes[i]
			}
			recs = append(recs, r)
			if err := w.Add(r); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		if rd.Header().Workload != "prop" || rd.Header().PageSize != 4096 {
			return false
		}
		for _, want := range recs {
			got, err := rd.Next()
			if err != nil || got != want {
				return false
			}
		}
		_, err = rd.Next()
		return errors.Is(err, io.EOF)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{Workload: "empty", PageSize: 8192})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Header().PageSize != 8192 {
		t.Fatal("header lost")
	}
	if _, err := rd.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestCaptureMatchesDirectExecution(t *testing.T) {
	w, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}

	// Direct: collect references from a functional run.
	m, err := emu.New(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	var direct []Record
	m.OnMemRef = func(a uint64, wr bool) { direct = append(direct, Record{a, wr}) }
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}

	// Via Capture + Reader.
	var buf bytes.Buffer
	n, err := Capture(p, 4096, &buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(direct)) {
		t.Fatalf("captured %d records, direct run made %d", n, len(direct))
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	err = rd.ForEach(func(r Record) error {
		if r != direct[i] {
			t.Fatalf("record %d: %+v vs %+v", i, r, direct[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(direct) {
		t.Fatalf("replayed %d of %d", i, len(direct))
	}
}

func TestCaptureCap(t *testing.T) {
	w, _ := workload.ByName("perl")
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := Capture(p, 4096, &buf, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("captured %d, want 100", n)
	}
}

// TestReplayMissRateMatchesLive: feeding a captured trace into the
// Figure 6 model gives the same miss rate as the live hook.
func TestReplayMissRateMatchesLive(t *testing.T) {
	w, _ := workload.ByName("compress")
	p, err := w.Build(prog.Budget32, workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	live := tlb.NewMissRateSim(8, tlb.LRU, 1)
	m, _ := emu.New(p, 4096)
	bits := m.AS.PageBits()
	m.OnMemRef = func(a uint64, _ bool) { live.Ref(a >> bits) }
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := Capture(p, 4096, &buf, 0); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := tlb.NewMissRateSim(8, tlb.LRU, 1)
	if err := rd.ForEach(func(r Record) error {
		replayed.Ref(r.Addr >> 12)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if live.Misses != replayed.Misses || live.Refs != replayed.Refs {
		t.Fatalf("live %d/%d vs replayed %d/%d",
			live.Misses, live.Refs, replayed.Misses, replayed.Refs)
	}
}
