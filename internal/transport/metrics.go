// RED instrumentation for the fabric's HTTP surface: a middleware
// that records request rate, error class, and duration per route
// template and per tenant, plus gauges over the service's live state
// (open jobs, worker-queue depth, store quota utilization). The
// families are exported through obs.Config.Extra, so hbatd's /metrics
// serves them next to the registry-backed simulation metrics in one
// promcheck-valid exposition.
//
// Routes are recorded as templates ("/v1/jobs/{id}/events"), never raw
// paths, so label cardinality is bounded by the API surface, not by
// job-id traffic. The tenant label is resolved by the handler (a body
// tenant overrides the header, exactly as admission sees it) and
// published back to the middleware through a per-request holder in the
// context; the same holder carries the job's trace id into the access
// log, so one grep by trace_id crosses the client/server boundary.
package transport

import (
	"context"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hbat/api"
	"hbat/internal/obs"
)

// redBounds are the request-duration histogram's upper bounds in
// milliseconds: roughly exponential from sub-millisecond pings to
// multi-second simulation-heavy polls.
var redBounds = []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// reqInfo is the per-request holder the middleware shares with the
// handler: the middleware injects it before routing, the handler fills
// in what only it can resolve (tenant, trace id), and the middleware
// reads it back when the response is done.
type reqInfo struct {
	mu     sync.Mutex
	tenant string
	trace  string
}

type reqInfoKey struct{}

// Annotate publishes the request's resolved tenant and trace id to the
// middleware's holder, if one is present. Empty arguments leave the
// corresponding field untouched. Exported so the fleet coordinator's
// handlers can feed the same middleware.
func Annotate(ctx context.Context, tenant, trace string) {
	ri, ok := ctx.Value(reqInfoKey{}).(*reqInfo)
	if !ok {
		return
	}
	ri.mu.Lock()
	if tenant != "" {
		ri.tenant = tenant
	}
	if trace != "" {
		ri.trace = trace
	}
	ri.mu.Unlock()
}

// routeTemplate maps a request path to its bounded route label.
func routeTemplate(path string) string {
	switch {
	case path == api.PathPing:
		return api.PathPing
	case path == api.PathJobs:
		return api.PathJobs
	case path == api.PathManifest:
		return api.PathManifest
	case path == api.PathWorkers:
		return api.PathWorkers
	case strings.HasPrefix(path, api.PathResults):
		return api.PathResults + "{speckey}"
	case strings.HasPrefix(path, api.PathJobs+"/"):
		rest := strings.TrimPrefix(path, api.PathJobs+"/")
		_, sub, _ := strings.Cut(rest, "/")
		switch sub {
		case "":
			return api.PathJobs + "/{id}"
		case "events":
			return api.PathJobs + "/{id}/events"
		case "spans":
			return api.PathJobs + "/{id}/spans"
		}
	}
	return "other"
}

// statusWriter captures the response status code while preserving the
// Flusher the SSE handler depends on.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// redKey identifies one RED series.
type redKey struct {
	route  string
	tenant string
}

// redEntry accumulates one (route, tenant) pair's request counts by
// status class and its duration histogram.
type redEntry struct {
	byClass map[string]uint64 // "2xx" | "3xx" | "4xx" | "5xx"
	counts  []uint64          // len(redBounds)+1; last is +Inf
	sum     float64           // milliseconds
	count   uint64
}

// RED is the middleware's request accumulator, shared by every
// request. The zero value is ready to use; set Prefix before the first
// scrape to rename the exported families (the fleet coordinator
// publishes the same shapes as hbat_fleet_* instead of hbat_fabric_*).
type RED struct {
	// Prefix names the exported families; "hbat_fabric" when empty.
	Prefix string

	mu      sync.Mutex
	entries map[redKey]*redEntry
}

func (m *RED) prefix() string {
	if m.Prefix != "" {
		return m.Prefix
	}
	return "hbat_fabric"
}

// Observe records one finished request under its route template,
// tenant, and status class ("2xx".."5xx").
func (m *RED) Observe(route, tenant, class string, ms float64) {
	m.mu.Lock()
	if m.entries == nil {
		m.entries = make(map[redKey]*redEntry)
	}
	k := redKey{route: route, tenant: tenant}
	e := m.entries[k]
	if e == nil {
		e = &redEntry{
			byClass: make(map[string]uint64, 4),
			counts:  make([]uint64, len(redBounds)+1),
		}
		m.entries[k] = e
	}
	e.byClass[class]++
	slot := len(redBounds)
	for i, b := range redBounds {
		if ms <= float64(b) {
			slot = i
			break
		}
	}
	e.counts[slot]++
	e.sum += ms
	e.count++
	m.mu.Unlock()
}

// Middleware wraps next with RED instrumentation and an access log.
// Every response is counted under its route template, tenant, and
// status class; the duration lands in the per-route histogram; and one
// Info-level access-log record is emitted through logger — which the
// binaries build from the shared -log-level/-log-format flags, so
// `-log-level warn` silences the access log exactly like every other
// binary's chatter.
func (m *RED) Middleware(logger *slog.Logger, next http.Handler) http.Handler {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ri := &reqInfo{}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri)))
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		ms := float64(time.Since(start).Microseconds()) / 1e3
		route := routeTemplate(r.URL.Path)
		ri.mu.Lock()
		ten, trace := ri.tenant, ri.trace
		ri.mu.Unlock()
		if ten == "" {
			// Handlers that never resolve a tenant (ping, manifest,
			// results) still get a bounded label from the header path.
			if ten = r.Header.Get(api.TenantHeader); ten == "" {
				ten = "default"
			}
		}
		class := "5xx"
		switch sw.code / 100 {
		case 2:
			class = "2xx"
		case 3:
			class = "3xx"
		case 4:
			class = "4xx"
		}
		m.Observe(route, ten, class, ms)
		lg := logger.With(
			"method", r.Method, "route", route, "tenant", ten,
			"status", sw.code, "wall_ms", ms,
		)
		if trace != "" {
			lg = lg.With("trace_id", trace)
		}
		lg.Info("http request")
	})
}

// Families exports the accumulator's request counters and duration
// histograms as exposition families named from Prefix. Series are
// emitted in sorted label order so scrapes are stable.
func (m *RED) Families() []obs.Family {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]redKey, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].tenant < keys[j].tenant
	})
	req := obs.Family{
		Name: m.prefix() + "_requests", Kind: "counter",
		Help: "Requests served by the v1 job API, by route template, tenant, and status class.",
	}
	dur := obs.Family{
		Name: m.prefix() + "_request_duration_ms", Kind: "histogram",
		Help: "Request wall time in milliseconds, by route template and tenant.",
	}
	for _, k := range keys {
		e := m.entries[k]
		classes := make([]string, 0, len(e.byClass))
		for c := range e.byClass {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			req.Series = append(req.Series, obs.Series{
				Labels: []obs.Label{{Name: "route", Value: k.route}, {Name: "tenant", Value: k.tenant}, {Name: "class", Value: c}},
				Value:  float64(e.byClass[c]),
			})
		}
		counts := make([]uint64, len(e.counts))
		copy(counts, e.counts)
		dur.Hists = append(dur.Hists, obs.HistSeries{
			Labels: []obs.Label{{Name: "route", Value: k.route}, {Name: "tenant", Value: k.tenant}},
			Bounds: redBounds,
			Counts: counts,
			Sum:    e.sum,
			Count:  e.count,
		})
	}
	return []obs.Family{req, dur}
}

// Middleware wraps next with the fabric's RED instrumentation, logging
// through the service's logger.
func (s *Service) Middleware(next http.Handler) http.Handler {
	return s.red.Middleware(s.log(), next)
}

// MetricsFamilies exports the fabric's RED counters and live-state
// gauges as exposition families — hand it to obs.Config.Extra. Series
// are emitted in sorted label order so scrapes are stable.
func (s *Service) MetricsFamilies() []obs.Family {
	families := s.red.Families()

	open := obs.Family{
		Name: "hbat_fabric_jobs_open", Kind: "gauge",
		Help: "Open (admitted, not yet finished) jobs per tenant.",
	}
	s.mu.Lock()
	tenants := make([]string, 0, len(s.byTenant))
	for t := range s.byTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		open.Series = append(open.Series, obs.Series{
			Labels: []obs.Label{{Name: "tenant", Value: t}},
			Value:  float64(s.byTenant[t]),
		})
	}
	s.mu.Unlock()
	if len(open.Series) == 0 {
		open.Series = []obs.Series{{Labels: []obs.Label{{Name: "tenant", Value: "default"}}, Value: 0}}
	}

	depth := obs.Family{
		Name: "hbat_fabric_queue_depth", Kind: "gauge",
		Help: "Queued spec tasks per worker shard.",
	}
	for i, q := range s.queues {
		depth.Series = append(depth.Series, obs.Series{
			Labels: []obs.Label{{Name: "shard", Value: strconv.Itoa(i)}},
			Value:  float64(len(q)),
		})
	}

	bytes := obs.Family{
		Name: "hbat_fabric_store_tenant_bytes", Kind: "gauge",
		Help: "Live result-store bytes attributed to each tenant.",
	}
	usage := s.cfg.Store.Tenants()
	utenants := make([]string, 0, len(usage))
	for t := range usage {
		utenants = append(utenants, t)
	}
	sort.Strings(utenants)
	for _, t := range utenants {
		bytes.Series = append(bytes.Series, obs.Series{
			Labels: []obs.Label{{Name: "tenant", Value: t}},
			Value:  float64(usage[t]),
		})
	}
	if len(bytes.Series) == 0 {
		bytes.Series = []obs.Series{{Labels: []obs.Label{{Name: "tenant", Value: "default"}}, Value: 0}}
	}

	quota := obs.Family{
		Name: "hbat_fabric_store_quota_bytes", Kind: "gauge",
		Help: "Configured per-tenant result-store quota in bytes (0 = unlimited).",
		Series: []obs.Series{{
			Value: float64(s.cfg.Store.TenantQuota()),
		}},
	}

	subs := obs.Family{
		Name: "hbat_fabric_span_subscribers", Kind: "gauge",
		Help: "Live span-feed subscriptions (one per open /events stream when tracing is on).",
		Series: []obs.Series{{
			Value: float64(s.cfg.Spans.Subscribers()),
		}},
	}

	return append(families, open, depth, bytes, quota, subs)
}
