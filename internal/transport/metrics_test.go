package transport_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"hbat/api"
	"hbat/internal/engine"
	"hbat/internal/obs"
	"hbat/internal/runspan"
	"hbat/internal/transport"
)

// scrape renders the service's extra families exactly as hbatd's
// /metrics does and validates the exposition with the promcheck parser.
func scrape(t *testing.T, svc *transport.Service) string {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteExposition(&buf, svc.MetricsFamilies()); err != nil {
		t.Fatalf("write exposition: %v", err)
	}
	if n, err := obs.ParseExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exposition invalid after %d samples: %v\n%s", n, err, buf.String())
	}
	return buf.String()
}

// TestREDMetrics drives the API across routes and tenants and checks
// the RED families: counters keyed by route template, tenant, and
// status class; a promcheck-valid duration histogram; and the
// live-state gauges.
func TestREDMetrics(t *testing.T) {
	svc, ts, _ := newService(t, transport.Config{Workers: 2, Spans: runspan.New(runspan.Config{})})
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	ctx := context.Background()

	c := api.NewClient(ts.URL)
	c.Tenant = "acme"
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	acc, err := c.Submit(ctx, api.JobRequest{Specs: []api.SimOptions{testSpec("compress", "T4")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, acc.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Job(ctx, "jdoesnotexist"); err == nil {
		t.Fatal("unknown job served")
	}

	out := scrape(t, svc)
	for _, want := range []string{
		`hbat_fabric_requests{route="/v1/ping",tenant="acme",class="2xx"} 1`,
		`hbat_fabric_requests{route="/v1/jobs",tenant="acme",class="2xx"} 1`,
		`hbat_fabric_requests{route="/v1/jobs/{id}",tenant="acme",class="4xx"} 1`,
		`hbat_fabric_request_duration_ms_bucket{route="/v1/jobs",tenant="acme",le="+Inf"} 1`,
		`hbat_fabric_request_duration_ms_count{route="/v1/jobs",tenant="acme"} 1`,
		`hbat_fabric_queue_depth{shard="0"}`,
		`hbat_fabric_queue_depth{shard="1"}`,
		`hbat_fabric_store_quota_bytes 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Status polls land on the templated route, never raw job-id paths.
	if strings.Contains(out, acc.ID) {
		t.Errorf("exposition leaks a raw job id (unbounded cardinality):\n%s", out)
	}
	// The finished job's artifact is attributed to the tenant.
	if !strings.Contains(out, `hbat_fabric_store_tenant_bytes{tenant="acme"}`) {
		t.Errorf("no store bytes gauge for tenant acme:\n%s", out)
	}
}

// TestAccessLogHonorsLevelAndFormat asserts the middleware logs through
// the service's shared logger: JSON records carrying route, tenant,
// status, and trace_id at Info — and nothing at Warn, exactly like the
// -log-level flag every binary shares.
func TestAccessLogHonorsLevelAndFormat(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	svc, ts, _ := newService(t, transport.Config{Workers: 1, Logger: logger})
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	ctx := context.Background()

	c := api.NewClient(ts.URL)
	c.Tenant = "logger-tenant"
	acc, err := c.Submit(ctx, api.JobRequest{Specs: []api.SimOptions{testSpec("compress", "T4")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, acc.ID); err != nil {
		t.Fatal(err)
	}

	var access []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", sc.Text(), err)
		}
		if rec["msg"] == "http request" {
			access = append(access, rec)
		}
	}
	if len(access) == 0 {
		t.Fatalf("no access-log records at Info level:\n%s", buf.String())
	}
	var sawSubmit bool
	for _, rec := range access {
		if rec["route"] == api.PathJobs && rec["method"] == http.MethodPost {
			sawSubmit = true
			if rec["tenant"] != "logger-tenant" {
				t.Errorf("submit access log tenant = %v, want logger-tenant", rec["tenant"])
			}
			if rec["status"] != float64(http.StatusAccepted) {
				t.Errorf("submit access log status = %v, want 202", rec["status"])
			}
			if s, _ := rec["trace_id"].(string); len(s) != 32 {
				t.Errorf("submit access log trace_id = %v, want 32-hex id", rec["trace_id"])
			}
		}
	}
	if !sawSubmit {
		t.Fatalf("no access-log record for POST %s:\n%s", api.PathJobs, buf.String())
	}

	// At Warn the access log is silent.
	var quiet bytes.Buffer
	warnLogger := slog.New(slog.NewJSONHandler(&quiet, &slog.HandlerOptions{Level: slog.LevelWarn}))
	svc2, ts2, _ := newService(t, transport.Config{Workers: 1, Logger: warnLogger})
	defer ts2.Close()
	defer svc2.Shutdown(context.Background())
	if err := api.NewClient(ts2.URL).Ping(ctx); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(quiet.String(), "http request") {
		t.Fatalf("access log not silenced at warn level:\n%s", quiet.String())
	}
}

// TestTracePropagation submits with a client traceparent and checks the
// job echoes the trace id, stamps it on statuses, and serves a span
// journal whose job root is parented under the client's span — with
// the engine's run tree joined to the same trace.
func TestTracePropagation(t *testing.T) {
	tr := runspan.New(runspan.Config{})
	// The engine shares the service's tracer, exactly as hbatd wires
	// -spans: job spans and run spans land in one journal.
	eng := engine.New()
	eng.SetSpans(tr)
	svc, ts, _ := newService(t, transport.Config{Engine: eng, Workers: 2, Spans: tr})
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	ctx := context.Background()

	tc := runspan.NewTraceContext()
	c := api.NewClient(ts.URL)
	acc, err := c.Submit(ctx, api.JobRequest{
		Specs:       []api.SimOptions{testSpec("compress", "T4")},
		Traceparent: tc.Traceparent(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc.TraceID != tc.TraceID {
		t.Fatalf("accepted trace_id = %q, want client's %q", acc.TraceID, tc.TraceID)
	}
	if acc.SpansURL == "" {
		t.Fatal("no spans_url on a span-traced server")
	}
	st, err := c.Wait(ctx, acc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != tc.TraceID {
		t.Fatalf("status trace_id = %q, want %q", st.TraceID, tc.TraceID)
	}

	raw, err := c.Spans(ctx, acc.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, spans, err := runspan.ReadJournal(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("empty span journal for a finished job")
	}
	byName := map[string][]runspan.SpanData{}
	for _, d := range spans {
		if d.TraceW3C != tc.TraceID {
			t.Fatalf("span %q trace_id = %q, want %q", d.Name, d.TraceW3C, tc.TraceID)
		}
		byName[d.Name] = append(byName[d.Name], d)
	}
	jobs := byName["job"]
	if len(jobs) != 1 {
		t.Fatalf("journal has %d job spans, want 1", len(jobs))
	}
	if jobs[0].RemoteParent != tc.SpanID {
		t.Fatalf("job root parented under %q, want the client span %q", jobs[0].RemoteParent, tc.SpanID)
	}
	runs := byName["run"]
	if len(runs) != 1 {
		t.Fatalf("journal has %d run spans, want 1", len(runs))
	}
	if runs[0].RemoteParent != jobs[0].SpanW3C {
		t.Fatalf("run root parented under %q, want the job span %q", runs[0].RemoteParent, jobs[0].SpanW3C)
	}
	for _, name := range []string{"queue_wait", "simulate"} {
		if len(byName[name]) == 0 {
			t.Errorf("journal has no %q span", name)
		}
	}
}

// TestTraceMintedWithoutClientContext: a bare curl-style submission
// still gets a server-minted trace id, and a malformed traceparent is
// treated as absent (W3C restart semantics), not rejected.
func TestTraceMintedWithoutClientContext(t *testing.T) {
	svc, ts, _ := newService(t, transport.Config{Workers: 1})
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	ctx := context.Background()

	c := api.NewClient(ts.URL)
	acc, err := c.Submit(ctx, api.JobRequest{Specs: []api.SimOptions{testSpec("compress", "T4")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(acc.TraceID) != 32 {
		t.Fatalf("minted trace_id = %q, want 32 hex chars", acc.TraceID)
	}
	if acc.SpansURL != "" {
		t.Fatalf("spans_url %q advertised without span tracing", acc.SpansURL)
	}
	acc2, err := c.Submit(ctx, api.JobRequest{
		Specs:       []api.SimOptions{testSpec("compress", "T4")},
		Traceparent: "garbage-header",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(acc2.TraceID) != 32 || acc2.TraceID == acc.TraceID {
		t.Fatalf("malformed traceparent: trace_id = %q, want a fresh mint", acc2.TraceID)
	}

	// Spans endpoint on an untraced server: structured 404.
	resp, err := http.Get(ts.URL + api.PathJobs + "/" + acc.ID + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("spans on untraced server -> %d, want 404", resp.StatusCode)
	}
}

// TestEventsSubscriberCleanup is the leak regression test: a client
// that abandons its /events stream mid-job must not leave its span
// subscription (or the handler goroutine) behind.
func TestEventsSubscriberCleanup(t *testing.T) {
	tr := runspan.New(runspan.Config{})
	// One worker so a multi-spec job is still in flight while the
	// stream is open.
	svc, ts, _ := newService(t, transport.Config{Workers: 1, Spans: tr})
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	ctx := context.Background()

	c := api.NewClient(ts.URL)
	acc, err := c.Submit(ctx, api.JobRequest{Specs: []api.SimOptions{
		testSpec("compress", "T4"),
		testSpec("compress", "T2"),
		testSpec("compress", "M4"),
	}})
	if err != nil {
		t.Fatal(err)
	}

	sctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, ts.URL+api.PathJobs+"/"+acc.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// The stream is live once the headers arrive; the span subscription
	// must exist now.
	deadline := time.Now().Add(5 * time.Second)
	for tr.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("span subscription never registered for the open stream")
		}
		time.Sleep(time.Millisecond)
	}

	// Abandon the stream mid-job.
	cancel()
	resp.Body.Close()
	for tr.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("span subscription leaked after client disconnect: %d live", tr.Subscribers())
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := c.Wait(ctx, acc.ID); err != nil {
		t.Fatal(err)
	}
}
