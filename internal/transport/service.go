// Package transport is the HTTP layer of the sweep fabric: it serves
// the versioned v1 job API (see the api package) over a sweep engine
// and a content-addressed result store. cmd/hbatd mounts it next to
// the obs endpoints; the e2e tests drive it in-process.
//
// Request flow: POST /v1/jobs normalizes every submitted SimOptions
// through engine.SpecFromWire (the same normalization the facade
// applies, so wire specs and local specs share one key space), admits
// the job against the per-tenant quota, and shards its specs across
// the worker pool by spec key. Workers consult the store first (a
// restart serves previous results without simulating), then the
// engine (whose memo deduplicates concurrent and repeated specs
// across tenants), render the canonical artifact, and file it back
// into the store under the submitting tenant.
package transport

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"hbat/api"
	"hbat/internal/engine"
	"hbat/internal/runspan"
	"hbat/internal/store"
)

// Config wires a Service. Engine and Store are required.
type Config struct {
	// Engine executes specs. One shared engine is what gives
	// cross-tenant memo hits; the service never creates its own.
	Engine *engine.Engine
	// Store holds rendered artifacts, content-addressed by spec key.
	Store *store.Store
	// Workers sizes the worker pool (default 4). Specs shard across
	// workers by spec key, so an identical spec submitted twice lands
	// on the same worker and the second ride is a pure cache read.
	Workers int
	// TenantJobs, when > 0, bounds concurrently open jobs per tenant;
	// submissions beyond it are rejected with 429.
	TenantJobs int
	// MaxSpecs, when > 0, bounds specs per job (413 beyond). Default
	// 1024.
	MaxSpecs int
	// Logger, when non-nil, receives one record per job transition.
	Logger *slog.Logger
	// Spans, when non-nil, feeds the SSE event stream with live
	// run-root spans and per-spec phase breakdowns.
	Spans *runspan.Tracer
}

// specTask is one spec of one job, queued to a worker. enq is the
// tracer mark taken at enqueue time, so the worker can record the
// spec's queue wait as a retroactive span.
type specTask struct {
	job *job
	idx int
	enq time.Duration
}

// job is one submitted job's live state. mu guards specs/done/state
// and the subscriber list.
type job struct {
	id     string
	tenant string
	// traceID is the job's 32-hex cross-process trace id — the one the
	// submitter sent via traceparent, or server-minted. Always set,
	// even with tracing off, so logs and statuses stay correlatable.
	// spanID is the job root span's own wire identity; engine runs are
	// parented under it.
	traceID string
	spanID  string
	// trace/root are the job's span tree when the service traces spans
	// (0/nil otherwise). The root span covers admission to completion.
	trace runspan.TraceID
	root  *runspan.Span

	mu    sync.Mutex
	specs []api.SpecStatus
	runs  []engine.RunSpec
	done  int
	state string
	// subs receive one api.Event per completed spec and a final
	// "done"; sends never block (lossy, like the span feed), except
	// the final done which each subscriber's buffer always has room
	// for because the channel is closed right after.
	subs map[uint64]chan api.Event
	// finished closes when every spec is done, releasing Shutdown.
	finished chan struct{}
}

// Service is a running sweep fabric. Create with New, mount Handler,
// stop with Shutdown.
type Service struct {
	cfg Config

	queues []chan specTask
	wg     sync.WaitGroup
	// enq tracks in-flight enqueue goroutines; Shutdown waits for it
	// before closing the queues so an admitted job never sends on a
	// closed channel. Add happens under mu, before draining can flip.
	enq sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	byTenant map[string]int
	draining bool
	subSeq   uint64

	// red accumulates the Middleware's per-route/per-tenant request
	// metrics (see metrics.go).
	red RED
}

// New starts the worker pool and returns the service.
func New(cfg Config) (*Service, error) {
	if cfg.Engine == nil || cfg.Store == nil {
		return nil, errors.New("transport: Config.Engine and Config.Store are required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxSpecs <= 0 {
		cfg.MaxSpecs = 1024
	}
	s := &Service{
		cfg:      cfg,
		jobs:     make(map[string]*job),
		byTenant: make(map[string]int),
		queues:   make([]chan specTask, cfg.Workers),
	}
	for i := range s.queues {
		s.queues[i] = make(chan specTask, 64)
		s.wg.Add(1)
		go s.worker(s.queues[i])
	}
	return s, nil
}

// Shutdown drains the service: no new jobs are admitted (the engine's
// Accepting state flips, so /ready reports 503), in-flight jobs run to
// completion or ctx expiry, and the worker pool exits.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	open := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		open = append(open, j)
	}
	s.mu.Unlock()
	s.cfg.Engine.SetAccepting(false)
	s.enq.Wait()
	for _, q := range s.queues {
		close(q)
	}
	for _, j := range open {
		select {
		case <-j.finished:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Handler returns the /v1 routing table, wrapped in the RED-metrics
// and access-log middleware. Mount it at "/" (it matches only /v1/...
// paths) or compose it with the obs handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathPing, s.handlePing)
	mux.HandleFunc(api.PathJobs, s.handleJobs)
	mux.HandleFunc(api.PathJobs+"/", s.handleJob)
	mux.HandleFunc(api.PathResults, s.handleResult)
	mux.HandleFunc(api.PathManifest, s.handleManifest)
	return s.Middleware(mux)
}

func (s *Service) log() *slog.Logger {
	if s.cfg.Logger != nil {
		return s.cfg.Logger
	}
	return slog.New(slog.DiscardHandler)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, &api.Error{API: api.Version, Code: code, Message: fmt.Sprintf(format, args...)})
}

func (s *Service) handlePing(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"api": api.Version, "pong": "hbatd"})
}

func newJobID() string {
	var b [8]byte
	rand.Read(b[:])
	return "j" + hex.EncodeToString(b[:])
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST %s", api.PathJobs)
		return
	}
	var req api.JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad job request: %v", err)
		return
	}
	ten := ResolveTenant(r, &req)
	Annotate(r.Context(), ten, "")
	wire := ExpandRequest(&req)
	if len(wire) == 0 {
		writeErr(w, http.StatusBadRequest, "job has no specs")
		return
	}
	if len(wire) > s.cfg.MaxSpecs {
		writeErr(w, http.StatusRequestEntityTooLarge, "%d specs exceeds the %d-spec job limit", len(wire), s.cfg.MaxSpecs)
		return
	}

	traceID, parentSpan := TraceIdentity(r, &req)
	j := &job{
		id:       newJobID(),
		tenant:   ten,
		traceID:  traceID,
		spanID:   runspan.NewSpanID(),
		state:    api.StateQueued,
		subs:     make(map[uint64]chan api.Event),
		finished: make(chan struct{}),
	}
	Annotate(r.Context(), "", traceID)
	runs, sts, err := NormalizeSpecs(wire)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	j.runs, j.specs = runs, sts

	// Admission: drain state and per-tenant open-job quota, checked and
	// charged under one lock so concurrent submissions cannot overshoot.
	s.mu.Lock()
	if s.draining || !s.cfg.Engine.Accepting() {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}
	if q := s.cfg.TenantJobs; q > 0 && s.byTenant[ten] >= q {
		s.mu.Unlock()
		writeErr(w, http.StatusTooManyRequests, "tenant %q has %d open jobs (limit %d)", ten, s.byTenant[ten], s.cfg.TenantJobs)
		return
	}
	s.byTenant[ten]++
	s.jobs[j.id] = j
	s.enq.Add(1)
	s.mu.Unlock()

	// The job root span: admission to completion, parented under the
	// submitting client's span (when one was propagated) and carrying
	// the job's own wire span id so the engine's run roots can parent
	// under it in turn.
	if tr := s.cfg.Spans; tr.Enabled() {
		j.trace = tr.NewTraceWith(j.traceID, j.spanID, parentSpan)
		j.root = tr.Start(j.trace, nil, "job").
			SetAttr("job", j.id).
			SetAttr("tenant", ten).
			SetAttr("specs", strconv.Itoa(len(j.specs)))
	}

	s.log().Info("job accepted", "job", j.id, "tenant", ten, "specs", len(j.specs), "trace_id", j.traceID)

	// Shard the job's specs across the pool by spec key: identical
	// specs always land on the same worker queue, so a duplicate only
	// ever waits on the engine's singleflight, never races it.
	acc := api.JobAccepted{
		API: api.Version, ID: j.id, Tenant: ten, Total: len(j.specs),
		StatusURL: api.PathJobs + "/" + j.id,
		EventsURL: api.PathJobs + "/" + j.id + "/events",
		TraceID:   j.traceID,
	}
	if s.cfg.Spans.Enabled() {
		acc.SpansURL = api.PathJobs + "/" + j.id + "/spans"
	}
	for i := range j.specs {
		acc.SpecKeys = append(acc.SpecKeys, j.specs[i].SpecKey)
	}
	go func() {
		defer s.enq.Done()
		for i := range j.specs {
			t := specTask{job: j, idx: i, enq: s.cfg.Spans.Now()}
			s.queues[shard(j.specs[i].SpecKey, len(s.queues))] <- t
		}
	}()
	writeJSON(w, http.StatusAccepted, acc)
}

// shard maps a spec key to a worker queue.
func shard(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32()) % n
}

// worker drains one queue until Shutdown closes it.
func (s *Service) worker(queue <-chan specTask) {
	defer s.wg.Done()
	for t := range queue {
		s.runSpec(t)
	}
}

// runSpec executes (or cache-serves) one spec and publishes its
// completion.
func (s *Service) runSpec(t specTask) {
	j, idx := t.job, t.idx
	j.mu.Lock()
	st := &j.specs[idx]
	st.State = api.StateRunning
	if j.state == api.StateQueued {
		j.state = api.StateRunning
	}
	key := st.SpecKey
	spec := j.runs[idx]
	j.mu.Unlock()

	// The time between enqueue and this pickup is the spec's queue
	// wait — recorded retroactively so zero-wait specs still show a
	// (tiny) span and loaded shards show the backlog.
	tr := s.cfg.Spans
	if sp := tr.StartAt(j.trace, j.root, "queue_wait", t.enq); sp != nil {
		sp.SetAttr("spec_key", key).End()
	}

	var final api.SpecStatus
	if _, sha, ok := s.cfg.Store.Get(key); ok {
		if sp := tr.Start(j.trace, j.root, "store_hit"); sp != nil {
			sp.SetAttr("spec_key", key).End()
		}
		final = api.SpecStatus{
			State: api.StateDone, StoreHit: true,
			ResultURL: api.PathResults + key, SHA256: sha,
		}
	} else {
		// Thread the job's trace identity into the engine: its run root
		// parents under the job span, and the shared trace id lands in
		// the engine's logs and manifest records.
		ctx := runspan.ContextWithTrace(context.Background(),
			runspan.TraceContext{TraceID: j.traceID, SpanID: j.spanID})
		final = s.simulate(ctx, j.tenant, key, spec)
	}

	j.mu.Lock()
	st = &j.specs[idx]
	st.State, st.Cached, st.StoreHit = final.State, final.Cached, final.StoreHit
	st.WallMs, st.Error = final.WallMs, final.Error
	st.ResultURL, st.SHA256 = final.ResultURL, final.SHA256
	j.done++
	done, total := j.done, len(j.specs)
	if done == total {
		j.state = api.StateDone
		for i := range j.specs {
			if j.specs[i].State == api.StateFailed {
				j.state = api.StateFailed
				break
			}
		}
	}
	ev := api.Event{Type: "spec", Job: j.id, Spec: cloneStatus(*st), Done: done, Total: total}
	j.publishLocked(ev)
	if done == total {
		j.publishLocked(api.Event{Type: "done", Job: j.id, Done: done, Total: total})
		for id, ch := range j.subs {
			delete(j.subs, id)
			close(ch)
		}
	}
	j.mu.Unlock()

	if done == total {
		j.root.End()
		close(j.finished)
		s.mu.Lock()
		s.byTenant[j.tenant]--
		if s.byTenant[j.tenant] <= 0 {
			delete(s.byTenant, j.tenant)
		}
		s.mu.Unlock()
		s.log().Info("job finished", "job", j.id, "tenant", j.tenant, "specs", total, "trace_id", j.traceID)
	}
}

// simulate runs one spec through the engine, renders the canonical
// artifact, and files it into the store. ctx carries the job's trace
// identity into the engine's span tracer and logs.
func (s *Service) simulate(ctx context.Context, tenant, key string, spec engine.RunSpec) api.SpecStatus {
	res := s.cfg.Engine.Run(ctx, spec)
	if res.Err != nil {
		return api.SpecStatus{State: api.StateFailed, Error: res.Err.Error()}
	}
	data := engine.Artifact(engine.Wire(res))
	st := api.SpecStatus{
		State:  api.StateDone,
		Cached: res.Cached,
		WallMs: float64(res.Wall.Microseconds()) / 1e3,
	}
	sha, err := s.cfg.Store.Put(tenant, key, data)
	if err != nil {
		// Quota or disk trouble: the simulation still succeeded, the
		// artifact is just not servable from the store. The status
		// carries the reason; the result remains reproducible.
		st.Error = err.Error()
		st.SHA256 = engine.ArtifactSHA256(data)
		return st
	}
	st.ResultURL = api.PathResults + key
	st.SHA256 = sha
	return st
}

func cloneStatus(st api.SpecStatus) *api.SpecStatus { return &st }

// publishLocked fans an event out to the job's subscribers. Callers
// hold j.mu. Sends never block: a subscriber that lags loses
// intermediate spec events (the SSE handler synthesizes the terminal
// done from job state if even that was dropped).
func (j *job) publishLocked(ev api.Event) {
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers an event feed for a job. The returned cancel is
// idempotent. A job that is already done gets an immediate "done"
// event and a closed channel.
func (j *job) subscribe(buf int) (<-chan api.Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan api.Event, buf)
	if j.done == len(j.specs) {
		ch <- api.Event{Type: "done", Job: j.id, Done: j.done, Total: len(j.specs)}
		close(ch)
		return ch, func() {}
	}
	id := uint64(len(j.subs)) + 1
	for {
		if _, taken := j.subs[id]; !taken {
			break
		}
		id++
	}
	j.subs[id] = ch
	return ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(ch)
		}
		j.mu.Unlock()
	}
}

// handleJob serves GET /v1/jobs/{id} and GET /v1/jobs/{id}/events.
func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, api.PathJobs+"/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	Annotate(r.Context(), j.tenant, j.traceID)
	switch sub {
	case "":
		writeJSON(w, http.StatusOK, j.status())
	case "events":
		s.serveEvents(w, r, j)
	case "spans":
		if !s.cfg.Spans.Enabled() {
			writeErr(w, http.StatusNotFound, "span tracing is disabled on this server (start hbatd with -spans)")
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := s.cfg.Spans.WriteJournalTo(w, j.traceID); err != nil {
			s.log().Warn("span journal write failed", "job", j.id, "error", err.Error())
		}
	default:
		writeErr(w, http.StatusNotFound, "no such job endpoint %q", sub)
	}
}

func (j *job) status() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := api.JobStatus{
		API: api.Version, ID: j.id, Tenant: j.tenant,
		State: j.state, Done: j.done, Total: len(j.specs),
		Specs:   make([]api.SpecStatus, len(j.specs)),
		TraceID: j.traceID,
	}
	copy(st.Specs, j.specs)
	return st
}

// serveEvents streams the job's progress as SSE. Each event is one
// api.Event JSON document. When the service has a span tracer, live
// run-root spans are interleaved as "span" events — the runspan feed
// is the transport of record for phase-level progress.
func (s *Service) serveEvents(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	events, cancel := j.subscribe(64)
	defer cancel()
	spans, cancelSpans := s.cfg.Spans.Subscribe(64)
	defer cancelSpans()
	// Unsubscribe the moment the client goes away, not merely when this
	// handler returns: a handler blocked mid-Write to a stalled peer
	// would otherwise keep both subscriptions registered (and the span
	// feed's channel open) for as long as the write takes to fail.
	// Both cancels are idempotent, so the deferred calls stay correct.
	stop := context.AfterFunc(r.Context(), func() {
		cancel()
		cancelSpans()
	})
	defer stop()

	emit := func(ev api.Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	for {
		select {
		case <-r.Context().Done():
			return
		case d, ok := <-spans:
			if !ok {
				spans = nil // tracer detached; keep serving job events
				continue
			}
			if d.Parent != 0 || d.Name != "run" {
				continue // roots only: one span event per simulation
			}
			ev := api.Event{Type: "span", Job: j.id, Span: &api.Span{
				Name: d.Name, DurUS: d.DurUS, Attrs: d.Attrs,
			}}
			if !emit(ev) {
				return
			}
		case ev, ok := <-events:
			if !ok {
				// The feed closed before this subscriber drained the
				// terminal event (lossy buffer): synthesize the done.
				st := j.status()
				emit(api.Event{Type: "done", Job: j.id, Done: st.Done, Total: st.Total})
				return
			}
			if !emit(ev) {
				return
			}
			if ev.Type == "done" {
				return
			}
		}
	}
}

// handleResult serves GET /v1/results/{speckey}: the canonical
// artifact with its content hash as a strong ETag.
func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	key := strings.TrimPrefix(r.URL.Path, api.PathResults)
	if !store.Key(key) {
		writeErr(w, http.StatusBadRequest, "malformed spec key %q", key)
		return
	}
	data, sha, ok := s.cfg.Store.Get(key)
	if !ok {
		writeErr(w, http.StatusNotFound, "no stored result for spec %s", key)
		return
	}
	etag := `"` + sha + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/json")
	if match := r.Header.Get("If-None-Match"); match != "" && strings.Contains(match, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Write(data)
}

// handleManifest serves the engine's provenance manifest: every run
// this process performed plus the store's current keys — enough for a
// client to audit what was simulated versus served from cache.
func (s *Service) handleManifest(w http.ResponseWriter, r *http.Request) {
	man := engine.NewManifest("hbatd", time.Now())
	man.RecordRuns(s.cfg.Engine)
	for _, key := range s.cfg.Store.Keys() {
		if data, _, ok := s.cfg.Store.Get(key); ok {
			man.AddArtifactBytes(key+".json", api.PathResults+key, data)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := man.WriteJSON(w); err != nil {
		s.log().Warn("manifest write failed", "error", err.Error())
	}
}
