package transport_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hbat"
	"hbat/api"
	"hbat/internal/engine"
	"hbat/internal/store"
	"hbat/internal/transport"
)

// newService spins up an in-process fabric over a fresh engine and
// store, mounted on an httptest server. Callers own the Shutdown.
func newService(t *testing.T, cfg transport.Config) (*transport.Service, *httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New()
	if cfg.Engine == nil {
		cfg.Engine = eng
	} else {
		eng = cfg.Engine
	}
	if cfg.Store == nil {
		st, err := store.New(store.Config{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	svc, err := transport.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	return svc, ts, eng
}

func testSpec(workload, design string) api.SimOptions {
	return api.SimOptions{
		CommonOptions: api.CommonOptions{Scale: "test"},
		Workload:      workload,
		Design:        design,
	}
}

func TestPingAndErrors(t *testing.T) {
	svc, ts, _ := newService(t, transport.Config{Workers: 2})
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	ctx := context.Background()
	c := api.NewClient(ts.URL)
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	// Unknown job: structured 404.
	if _, err := c.Job(ctx, "jdeadbeef"); err == nil {
		t.Fatal("unknown job did not error")
	} else {
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || apiErr.Code != http.StatusNotFound {
			t.Fatalf("unknown job error = %v, want api.Error 404", err)
		}
	}
	// Bad spec: 400.
	if _, err := c.Submit(ctx, api.JobRequest{Specs: []api.SimOptions{testSpec("nope", "T4")}}); err == nil {
		t.Fatal("bad workload accepted")
	}
	// Empty job: 400.
	if _, err := c.Submit(ctx, api.JobRequest{}); err == nil {
		t.Fatal("empty job accepted")
	}
	// Absent result: 404; malformed key: 400.
	if _, _, err := c.Result(ctx, "abcdef123456"); err == nil {
		t.Fatal("absent result served")
	}
	resp, err := http.Get(ts.URL + api.PathResults + "../escape")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
		t.Fatalf("traversal key -> %d", resp.StatusCode)
	}
}

// TestServiceEndToEnd is the PR's acceptance test: four concurrent
// tenants submit overlapping grids; every spec simulates at most once
// across all of them (engine singleflight + store); a tenant that
// re-requests a spec another tenant simulated gets a store hit; the
// served artifact is byte-identical to what the in-process facade
// renders; and the service drains cleanly without leaking goroutines.
func TestServiceEndToEnd(t *testing.T) {
	before := runtime.NumGoroutine()

	svc, ts, eng := newService(t, transport.Config{Workers: 4})
	ctx := context.Background()

	// Four tenants, overlapping small grids: every tenant asks for the
	// shared (compress, T4) spec plus one private design.
	private := []string{"T1", "M8", "I4", "P8"}
	var wg sync.WaitGroup
	finals := make([]api.JobStatus, 4)
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := api.NewClient(ts.URL)
			c.Tenant = fmt.Sprintf("tenant-%d", i)
			acc, err := c.Submit(ctx, api.JobRequest{Specs: []api.SimOptions{
				testSpec("compress", "T4"),
				testSpec("compress", private[i]),
			}})
			if err != nil {
				errs[i] = err
				return
			}
			if acc.Total != 2 || len(acc.SpecKeys) != 2 {
				errs[i] = fmt.Errorf("accepted %d specs", acc.Total)
				return
			}
			finals[i], errs[i] = c.Wait(ctx, acc.ID)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
	}
	for i, st := range finals {
		if st.State != api.StateDone {
			t.Fatalf("tenant %d job state %q: %+v", i, st.State, st)
		}
		for _, sp := range st.Specs {
			if sp.State != api.StateDone || sp.Error != "" {
				t.Fatalf("tenant %d spec %s: %+v", i, sp.Spec, sp)
			}
			if sp.SHA256 == "" || sp.ResultURL == "" {
				t.Fatalf("tenant %d spec %s missing result pointers: %+v", i, sp.Spec, sp)
			}
		}
	}

	// 5 unique specs across 8 requests: the engine must have executed
	// each exactly once, the rest served by memo/store.
	if exec := eng.State().Executed; exec != 5 {
		t.Errorf("engine executed %d specs, want 5 (4 tenants x shared spec deduped)", exec)
	}

	// A fifth tenant re-requests the shared spec: pure store hit, no
	// engine involvement.
	c := api.NewClient(ts.URL)
	c.Tenant = "late-tenant"
	acc, err := c.Submit(ctx, api.JobRequest{Specs: []api.SimOptions{testSpec("compress", "T4")}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, acc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Specs[0].StoreHit {
		t.Fatalf("late tenant not served from store: %+v", st.Specs[0])
	}
	if exec := eng.State().Executed; exec != 5 {
		t.Errorf("store hit still touched the engine: executed = %d", exec)
	}

	// Byte identity: the served artifact equals the facade's rendering
	// of the same options, and the ETag is its SHA-256.
	data, etag, err := c.Result(ctx, acc.SpecKeys[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := hbat.Simulate(ctx, hbat.Options{
		CommonOptions: hbat.CommonOptions{Scale: "test"},
		Workload:      "compress",
		Design:        "T4",
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(res.Artifact()) {
		t.Errorf("served artifact differs from facade artifact:\n%s\nvs\n%s", data, res.Artifact())
	}
	if etag != engine.ArtifactSHA256(data) {
		t.Errorf("ETag %q is not the artifact's SHA-256", etag)
	}

	// Conditional fetch: If-None-Match with the ETag is a 304.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+api.PathResults+acc.SpecKeys[0], nil)
	req.Header.Set("If-None-Match", `"`+etag+`"`)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("conditional fetch -> %d, want 304", resp.StatusCode)
	}

	// Clean drain: Shutdown completes promptly, then rejects new jobs.
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := c.Submit(ctx, api.JobRequest{Specs: []api.SimOptions{testSpec("compress", "T4")}}); err == nil {
		t.Fatal("drained service accepted a job")
	} else {
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || apiErr.Code != http.StatusServiceUnavailable {
			t.Fatalf("post-drain submit error = %v, want 503", err)
		}
	}
	ts.Close()

	// Goroutine-leak check: the worker pool, SSE streams, and enqueue
	// goroutines must all be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after drain", before, n)
	}
}

// TestTenantJobQuota rejects a tenant's second concurrent job with 429
// while the first is still open, and admits it again after.
func TestTenantJobQuota(t *testing.T) {
	svc, ts, _ := newService(t, transport.Config{Workers: 1, TenantJobs: 1})
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	ctx := context.Background()
	c := api.NewClient(ts.URL)
	c.Tenant = "greedy"

	// A 13-design grid on one worker keeps the job open long enough to
	// observe the quota deterministically from this goroutine.
	acc, err := c.Submit(ctx, api.JobRequest{Grid: &api.Grid{
		Workloads: []string{"compress"},
		Template:  api.SimOptions{CommonOptions: api.CommonOptions{Scale: "test"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Total != 13 {
		t.Fatalf("grid expanded to %d specs, want 13", acc.Total)
	}
	_, err = c.Submit(ctx, api.JobRequest{Specs: []api.SimOptions{testSpec("compress", "T4")}})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusTooManyRequests {
		t.Fatalf("second job error = %v, want api.Error 429", err)
	}
	// Another tenant is not affected.
	c2 := api.NewClient(ts.URL)
	c2.Tenant = "modest"
	if _, err := c2.Submit(ctx, api.JobRequest{Specs: []api.SimOptions{testSpec("compress", "T4")}}); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	// Once the first job completes, the quota is released.
	if _, err := c.Wait(ctx, acc.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, api.JobRequest{Specs: []api.SimOptions{testSpec("compress", "T4")}}); err != nil {
		t.Fatalf("post-completion submit rejected: %v", err)
	}
}

// TestEventsStream reads the SSE feed of a job and expects one "spec"
// event per spec and a terminal "done".
func TestEventsStream(t *testing.T) {
	svc, ts, _ := newService(t, transport.Config{Workers: 2})
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	ctx := context.Background()
	c := api.NewClient(ts.URL)

	acc, err := c.Submit(ctx, api.JobRequest{Specs: []api.SimOptions{
		testSpec("compress", "T4"),
		testSpec("espresso", "T4"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + acc.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var specs, dones int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev api.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		switch ev.Type {
		case "spec":
			specs++
			if ev.Spec == nil || ev.Spec.State != api.StateDone {
				t.Errorf("spec event without done status: %+v", ev)
			}
		case "done":
			dones++
			if ev.Done != 2 || ev.Total != 2 {
				t.Errorf("done event counts %d/%d, want 2/2", ev.Done, ev.Total)
			}
		}
		if ev.Type == "done" {
			break
		}
	}
	// The job may finish specs before the stream attaches, so allow
	// fewer spec events — but the terminal done must always arrive.
	if dones != 1 {
		t.Fatalf("saw %d done events (and %d spec events), want exactly 1", dones, specs)
	}
}

// TestManifestListsRuns checks /v1/manifest reports the engine's runs
// and the stored artifacts.
func TestManifestListsRuns(t *testing.T) {
	svc, ts, _ := newService(t, transport.Config{Workers: 1})
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	ctx := context.Background()
	c := api.NewClient(ts.URL)
	acc, err := c.Submit(ctx, api.JobRequest{Specs: []api.SimOptions{testSpec("compress", "T4")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, acc.ID); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + api.PathManifest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var man struct {
		Runs      []json.RawMessage `json:"runs"`
		Artifacts []struct {
			Name   string `json:"name"`
			SHA256 string `json:"sha256"`
		} `json:"artifacts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&man); err != nil {
		t.Fatal(err)
	}
	if len(man.Runs) != 1 {
		t.Errorf("manifest lists %d runs, want 1", len(man.Runs))
	}
	if len(man.Artifacts) != 1 || !strings.HasPrefix(man.Artifacts[0].Name, acc.SpecKeys[0]) {
		t.Errorf("manifest artifacts = %+v", man.Artifacts)
	}
}

// TestDialFabric covers the facade's Dial handle: remote mode against
// the in-process service, and local fallback when nothing listens.
func TestDialFabric(t *testing.T) {
	svc, ts, _ := newService(t, transport.Config{Workers: 2})
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	ctx := context.Background()

	f, err := hbat.Dial(ctx, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Remote() {
		t.Fatalf("Dial(%s) fell back to local: %v", ts.URL, f.FallbackErr())
	}
	f.SetTenant("dialer")
	opts := hbat.Options{
		CommonOptions: hbat.CommonOptions{Scale: "test"},
		Workload:      "espresso",
		Design:        "M8",
	}
	remote, err := f.Simulate(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	local, err := hbat.Simulate(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if string(remote.Artifact()) != string(local.Artifact()) {
		t.Error("remote and local artifacts differ")
	}
	if remote.IPC != local.IPC || remote.Cycles != local.Cycles {
		t.Errorf("remote result diverges: IPC %v vs %v", remote.IPC, local.IPC)
	}

	// Local fallback: a dead address yields a working local handle.
	lf, err := hbat.Dial(ctx, "http://127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	if lf.Remote() || lf.FallbackErr() == nil {
		t.Fatalf("dead address did not fall back: remote=%v err=%v", lf.Remote(), lf.FallbackErr())
	}
	fres, err := lf.Simulate(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if string(fres.Artifact()) != string(local.Artifact()) {
		t.Error("fallback artifact differs from local artifact")
	}
}
