package transport

// This file holds the shared job-intake pieces of the v1 API surface:
// tenant resolution, grid expansion, spec normalization, trace-identity
// extraction, and the JSON response helpers. Both the single-node
// Service (this package) and the fleet coordinator (internal/fleet)
// serve the same wire contract, so they intake jobs through these exact
// functions — a spec submitted to either lands in the same key space
// and carries the same trace identity semantics.

import (
	"fmt"
	"net/http"

	"hbat/api"
	"hbat/internal/engine"
	"hbat/internal/runspan"
	"hbat/internal/tlb"
	"hbat/internal/workload"
)

// ResolveTenant resolves the caller's tenant: body field, then the
// X-Hbat-Tenant header, then "default".
func ResolveTenant(r *http.Request, body *api.JobRequest) string {
	if body != nil && body.Tenant != "" {
		return body.Tenant
	}
	if t := r.Header.Get(api.TenantHeader); t != "" {
		return t
	}
	return "default"
}

// ExpandRequest flattens a JobRequest into wire specs: the grid's
// workload × design product first (nil axes default to the full
// Table 3 / Table 2 sets), explicit specs after.
func ExpandRequest(req *api.JobRequest) []api.SimOptions {
	var specs []api.SimOptions
	if g := req.Grid; g != nil {
		ws, ds := g.Workloads, g.Designs
		if len(ws) == 0 {
			ws = workload.Names()
		}
		if len(ds) == 0 {
			ds = tlb.DesignOrder
		}
		for _, w := range ws {
			for _, d := range ds {
				o := g.Template
				o.Workload, o.Design = w, d
				specs = append(specs, o)
			}
		}
	}
	return append(specs, req.Specs...)
}

// NormalizeSpecs runs every wire spec through engine.SpecFromWire —
// the one normalization point the facade also uses — and returns the
// normalized runs alongside their initial queued statuses. The first
// malformed spec aborts the whole job.
func NormalizeSpecs(wire []api.SimOptions) ([]engine.RunSpec, []api.SpecStatus, error) {
	runs := make([]engine.RunSpec, 0, len(wire))
	sts := make([]api.SpecStatus, 0, len(wire))
	for _, o := range wire {
		spec, err := engine.SpecFromWire(o)
		if err != nil {
			return nil, nil, err
		}
		runs = append(runs, spec)
		sts = append(sts, api.SpecStatus{
			SpecKey: spec.Hash(),
			Spec:    spec.String(),
			State:   api.StateQueued,
		})
	}
	return runs, sts, nil
}

// TraceIdentity extracts a submission's trace context: the body
// traceparent wins over the header (per the wire contract), and an
// absent or malformed one — W3C restart semantics — mints a fresh
// trace id with no remote parent, so every accepted job has a trace
// id to correlate logs, statuses, and span journals by.
func TraceIdentity(r *http.Request, req *api.JobRequest) (traceID, parentSpan string) {
	tp := req.Traceparent
	if tp == "" {
		tp = r.Header.Get(api.TraceparentHeader)
	}
	if tp != "" {
		if tc, err := runspan.ParseTraceparent(tp); err == nil {
			return tc.TraceID, tc.SpanID
		}
	}
	return runspan.NewTraceContext().TraceID, ""
}

// WriteJSON writes v as the JSON body of a response with the given
// status code.
func WriteJSON(w http.ResponseWriter, code int, v any) { writeJSON(w, code, v) }

// WriteErr writes a structured api.Error response.
func WriteErr(w http.ResponseWriter, code int, format string, args ...any) {
	WriteJSON(w, code, &api.Error{API: api.Version, Code: code, Message: fmt.Sprintf(format, args...)})
}
