// Package vm implements the virtual-memory substrate: per-process page
// tables with configurable page size, on-demand physical frame
// allocation, protection bits, and referenced/dirty status. Every TLB
// design in internal/tlb caches entries produced by this package and
// writes status updates back through it.
package vm

import (
	"errors"
	"fmt"
	"sort"
)

// Perm is a page-protection bit set.
type Perm uint8

// Protection bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// PermRW is the common data-page protection.
const PermRW = PermRead | PermWrite

func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// PTE is a page-table entry: the mapping from one virtual page to a
// physical frame, its protection, and its status bits. TLB devices hold
// copies of the (VPN, PFN, Perm) fields and propagate status updates
// back to the authoritative entry here.
type PTE struct {
	VPN   uint64
	PFN   uint64
	Perm  Perm
	Ref   bool // referenced
	Dirty bool // written
}

// Common errors returned by translation.
var (
	// ErrUnmapped reports an access to an address with no mapping and
	// outside any growable region.
	ErrUnmapped = errors.New("vm: address not mapped")
	// ErrProt reports a protection violation.
	ErrProt = errors.New("vm: protection violation")
)

// Region is a contiguous range of virtual addresses that the address
// space will demand-allocate with a fixed protection. Workloads declare
// their code, global, heap, and stack segments as regions.
type Region struct {
	Name string
	Base uint64 // inclusive
	Size uint64 // bytes
	Perm Perm
}

// Contains reports whether vaddr falls inside the region.
func (r Region) Contains(vaddr uint64) bool {
	return vaddr >= r.Base && vaddr-r.Base < r.Size
}

// AddressSpace is a single simulated process address space: a page
// table plus the set of demand-allocatable regions.
type AddressSpace struct {
	pageBits  uint
	pageSize  uint64
	pages     map[uint64]*PTE
	regions   []Region
	nextFrame uint64 // next physical frame number to hand out

	// Faults counts translation failures (unmapped or protection).
	Faults uint64
	// WalkCount counts successful page-table walks (TLB fills).
	WalkCount uint64
}

// NewAddressSpace creates an address space with the given page size,
// which must be a power of two of at least 1 KB (the paper evaluates
// 4 KB and 8 KB pages).
func NewAddressSpace(pageSize uint64) *AddressSpace {
	if pageSize < 1024 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("vm: invalid page size %d", pageSize))
	}
	bits := uint(0)
	for s := pageSize; s > 1; s >>= 1 {
		bits++
	}
	return &AddressSpace{
		pageBits:  bits,
		pageSize:  pageSize,
		pages:     make(map[uint64]*PTE),
		nextFrame: 1, // frame 0 reserved so PFN 0 never appears in a valid PTE
	}
}

// PageSize returns the page size in bytes.
func (as *AddressSpace) PageSize() uint64 { return as.pageSize }

// PageBits returns log2(page size).
func (as *AddressSpace) PageBits() uint { return as.pageBits }

// VPN returns the virtual page number of vaddr.
func (as *AddressSpace) VPN(vaddr uint64) uint64 { return vaddr >> as.pageBits }

// PageOffset returns the offset of vaddr within its page.
func (as *AddressSpace) PageOffset(vaddr uint64) uint64 {
	return vaddr & (as.pageSize - 1)
}

// AddRegion registers a demand-allocatable region. Overlapping regions
// are allowed; the first matching region's protection wins.
func (as *AddressSpace) AddRegion(r Region) {
	as.regions = append(as.regions, r)
}

// Regions returns the registered regions.
func (as *AddressSpace) Regions() []Region { return as.regions }

// regionFor returns the first region containing the first byte of the
// page holding vaddr, or nil.
func (as *AddressSpace) regionFor(vaddr uint64) *Region {
	for i := range as.regions {
		if as.regions[i].Contains(vaddr) {
			return &as.regions[i]
		}
	}
	return nil
}

// Lookup returns the PTE for vpn if one exists, without allocating.
func (as *AddressSpace) Lookup(vpn uint64) (*PTE, bool) {
	pte, ok := as.pages[vpn]
	return pte, ok
}

// Walk performs a page-table walk for vpn: it returns the existing PTE
// or demand-allocates one if the page lies in a registered region.
// Walk is what a TLB miss handler invokes; it counts as a walk even
// when the PTE already existed.
func (as *AddressSpace) Walk(vpn uint64) (*PTE, error) {
	if pte, ok := as.pages[vpn]; ok {
		as.WalkCount++
		return pte, nil
	}
	vaddr := vpn << as.pageBits
	r := as.regionFor(vaddr)
	if r == nil {
		as.Faults++
		return nil, fmt.Errorf("%w: va 0x%x", ErrUnmapped, vaddr)
	}
	pte := &PTE{VPN: vpn, PFN: as.nextFrame, Perm: r.Perm}
	as.nextFrame++
	as.pages[vpn] = pte
	as.WalkCount++
	return pte, nil
}

// Probe is a side-effect-free translation used for speculative
// accesses: it never allocates and never counts a fault.
func (as *AddressSpace) Probe(vpn uint64) (*PTE, bool) {
	pte, ok := as.pages[vpn]
	return pte, ok
}

// Translate maps a virtual address to a physical address for an access
// needing perm, walking (and demand-allocating) as required and
// updating Ref/Dirty. It is the functional-simulation path; the timing
// simulator goes through a TLB device instead.
func (as *AddressSpace) Translate(vaddr uint64, perm Perm) (uint64, error) {
	pte, err := as.Walk(as.VPN(vaddr))
	if err != nil {
		return 0, err
	}
	if pte.Perm&perm != perm {
		as.Faults++
		return 0, fmt.Errorf("%w: va 0x%x needs %v has %v", ErrProt, vaddr, perm, pte.Perm)
	}
	pte.Ref = true
	if perm&PermWrite != 0 {
		pte.Dirty = true
	}
	return pte.PFN<<as.pageBits | as.PageOffset(vaddr), nil
}

// MappedPages reports how many pages are currently mapped.
func (as *AddressSpace) MappedPages() int { return len(as.pages) }

// Unmap removes the mapping for vpn, if any. Used by tests and by
// consistency-operation experiments.
func (as *AddressSpace) Unmap(vpn uint64) { delete(as.pages, vpn) }

// ClearStatus resets the referenced and dirty bits of every mapped page
// (used after program loading so the simulated machine's own accesses
// generate status updates).
func (as *AddressSpace) ClearStatus() {
	for _, pte := range as.pages {
		pte.Ref = false
		pte.Dirty = false
	}
}

// NextFrame returns the next physical frame number the allocator would
// hand out. Checkpoints record it so allocation resumes deterministically.
func (as *AddressSpace) NextFrame() uint64 { return as.nextFrame }

// ExportPages returns a copy of every mapped PTE sorted by VPN, so the
// result is deterministic for serialization.
func (as *AddressSpace) ExportPages() []PTE {
	out := make([]PTE, 0, len(as.pages))
	for _, pte := range as.pages {
		out = append(out, *pte)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VPN < out[j].VPN })
	return out
}

// ImportPages replaces the page table with copies of ptes and resets the
// frame allocator to nextFrame. The AddressSpace value itself is mutated
// in place: TLB devices hold a pointer to it, so the restored table must
// appear behind the same pointer they captured at construction. Fault and
// walk counters are zeroed — the measurement window starts fresh.
func (as *AddressSpace) ImportPages(ptes []PTE, nextFrame uint64) {
	as.pages = make(map[uint64]*PTE, len(ptes))
	for i := range ptes {
		p := ptes[i]
		as.pages[p.VPN] = &p
	}
	as.nextFrame = nextFrame
	as.Faults = 0
	as.WalkCount = 0
}
