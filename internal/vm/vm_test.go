package vm

import (
	"errors"
	"testing"
	"testing/quick"
)

func newAS(t *testing.T, pageSize uint64) *AddressSpace {
	t.Helper()
	as := NewAddressSpace(pageSize)
	as.AddRegion(Region{Name: "data", Base: 0x1000_0000, Size: 1 << 20, Perm: PermRW})
	as.AddRegion(Region{Name: "text", Base: 0x0040_0000, Size: 1 << 16, Perm: PermRead | PermExec})
	return as
}

func TestPageGeometry(t *testing.T) {
	as := NewAddressSpace(8192)
	if as.PageSize() != 8192 || as.PageBits() != 13 {
		t.Fatalf("size %d bits %d", as.PageSize(), as.PageBits())
	}
	if as.VPN(0x4000) != 2 || as.PageOffset(0x4005) != 5 {
		t.Fatal("vpn/offset math wrong")
	}
}

func TestInvalidPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two page size")
		}
	}()
	NewAddressSpace(3000)
}

func TestDemandAllocation(t *testing.T) {
	as := newAS(t, 4096)
	pa1, err := as.Translate(0x1000_0000, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	pa2, err := as.Translate(0x1000_1000, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if pa1 == pa2 {
		t.Fatal("distinct pages share a frame")
	}
	if as.MappedPages() != 2 {
		t.Fatalf("mapped pages = %d", as.MappedPages())
	}
	// Same page translates consistently.
	pa1b, _ := as.Translate(0x1000_0008, PermRead)
	if pa1b != pa1+8 {
		t.Fatalf("offset not preserved: %#x vs %#x", pa1b, pa1)
	}
}

func TestUnmappedFaults(t *testing.T) {
	as := newAS(t, 4096)
	if _, err := as.Translate(0x7000_0000, PermRead); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("err = %v, want ErrUnmapped", err)
	}
	if as.Faults != 1 {
		t.Fatalf("faults = %d", as.Faults)
	}
}

func TestProtection(t *testing.T) {
	as := newAS(t, 4096)
	if _, err := as.Translate(0x0040_0000, PermWrite); !errors.Is(err, ErrProt) {
		t.Fatalf("write to text: %v, want ErrProt", err)
	}
	if _, err := as.Translate(0x0040_0000, PermRead|PermExec); err != nil {
		t.Fatalf("fetch from text: %v", err)
	}
	if _, err := as.Translate(0x1000_0000, PermExec); !errors.Is(err, ErrProt) {
		t.Fatalf("exec of data: %v, want ErrProt", err)
	}
}

func TestRefDirtyBits(t *testing.T) {
	as := newAS(t, 4096)
	as.Translate(0x1000_0000, PermRead)
	pte, _ := as.Lookup(as.VPN(0x1000_0000))
	if !pte.Ref || pte.Dirty {
		t.Fatalf("after read: %+v", pte)
	}
	as.Translate(0x1000_0000, PermWrite)
	if !pte.Dirty {
		t.Fatal("write did not set dirty")
	}
	as.ClearStatus()
	if pte.Ref || pte.Dirty {
		t.Fatal("ClearStatus did not clear")
	}
}

func TestProbeHasNoSideEffects(t *testing.T) {
	as := newAS(t, 4096)
	if _, ok := as.Probe(as.VPN(0x1000_0000)); ok {
		t.Fatal("probe of unwalked page hit")
	}
	if as.MappedPages() != 0 || as.Faults != 0 {
		t.Fatal("probe had side effects")
	}
}

func TestWalkIdempotent(t *testing.T) {
	as := newAS(t, 4096)
	p1, err := as.Walk(as.VPN(0x1000_0000))
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := as.Walk(as.VPN(0x1000_0000))
	if p1 != p2 {
		t.Fatal("walk reallocated an existing page")
	}
	if as.WalkCount != 2 {
		t.Fatalf("walk count = %d", as.WalkCount)
	}
}

func TestUnmap(t *testing.T) {
	as := newAS(t, 4096)
	vpn := as.VPN(0x1000_0000)
	as.Walk(vpn)
	as.Unmap(vpn)
	if _, ok := as.Probe(vpn); ok {
		t.Fatal("unmapped page still probes")
	}
}

// Property: translation preserves page offsets and never maps two
// virtual pages to the same frame.
func TestTranslationProperties(t *testing.T) {
	as := newAS(t, 4096)
	frames := map[uint64]uint64{} // pfn -> vpn
	if err := quick.Check(func(off uint32) bool {
		vaddr := 0x1000_0000 + uint64(off)%(1<<20)
		pa, err := as.Translate(vaddr, PermRead)
		if err != nil {
			return false
		}
		if pa&4095 != vaddr&4095 {
			return false // offset not preserved
		}
		pfn := pa >> 12
		vpn := vaddr >> 12
		if prev, ok := frames[pfn]; ok && prev != vpn {
			return false // frame aliased
		}
		frames[pfn] = vpn
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
