package workload

import (
	"sync"
	"sync/atomic"

	"hbat/internal/prog"
)

// BuildCache memoizes workload builds keyed by (workload, register
// budget, scale), so a design-grid sweep that runs the same program on
// thirteen translation designs builds it once instead of thirteen
// times. It is safe for concurrent use and deduplicates in-flight
// builds: concurrent requests for the same key block on one build.
//
// Cached programs are shared between callers and MUST be treated as
// immutable (see prog.Program); the simulator copies data segments into
// its own memory at load time and never writes the program.
type BuildCache struct {
	mu      sync.Mutex
	entries map[buildKey]*buildEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

type buildKey struct {
	name   string
	budget prog.RegBudget
	scale  Scale
}

type buildEntry struct {
	once sync.Once
	p    *prog.Program
	err  error
}

// NewBuildCache returns an empty cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{entries: make(map[buildKey]*buildEntry)}
}

// Build returns the named workload's program for a budget and scale,
// building it on first use and serving the shared, immutable program
// afterwards. An unknown workload name fails without touching the
// cache; a failed build is cached and re-reported to later callers
// (builds are deterministic, so retrying cannot succeed).
func (c *BuildCache) Build(name string, budget prog.RegBudget, scale Scale) (*prog.Program, error) {
	w, err := ByName(name)
	if err != nil {
		return nil, err
	}
	key := buildKey{name: name, budget: budget, scale: scale}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &buildEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	first := false
	e.once.Do(func() {
		first = true
		e.p, e.err = w.Build(budget, scale)
	})
	if first {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	return e.p, e.err
}

// Stats returns how many Build calls were served from the cache (hits)
// and how many performed the build (misses).
func (c *BuildCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
