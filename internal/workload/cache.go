package workload

import (
	"sync"
	"sync/atomic"

	"hbat/internal/prog"
)

// BuildCache memoizes workload builds keyed by (workload, register
// budget, scale), so a design-grid sweep that runs the same program on
// thirteen translation designs builds it once instead of thirteen
// times. It is safe for concurrent use and deduplicates in-flight
// builds: concurrent requests for the same key block on one build.
//
// Cached programs are shared between callers and MUST be treated as
// immutable (see prog.Program); the simulator copies data segments into
// its own memory at load time and never writes the program.
type BuildCache struct {
	mu      sync.Mutex
	entries map[buildKey]*buildEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

type buildKey struct {
	name   string
	budget prog.RegBudget
	scale  Scale
}

type buildEntry struct {
	once sync.Once
	done atomic.Bool // set after the build completes; waiters observe it
	p    *prog.Program
	err  error
}

// BuildOutcome describes how a BuildObserved call was served:
// a fresh build (neither flag), a finished cache entry (Hit), or a
// block on another goroutine's in-flight build (Hit+Waited).
type BuildOutcome struct {
	Hit    bool
	Waited bool
}

// NewBuildCache returns an empty cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{entries: make(map[buildKey]*buildEntry)}
}

// Build returns the named workload's program for a budget and scale,
// building it on first use and serving the shared, immutable program
// afterwards. An unknown workload name fails without touching the
// cache; a failed build is cached and re-reported to later callers
// (builds are deterministic, so retrying cannot succeed).
func (c *BuildCache) Build(name string, budget prog.RegBudget, scale Scale) (*prog.Program, error) {
	p, _, err := c.BuildObserved(name, budget, scale)
	return p, err
}

// BuildObserved is Build plus an account of how the call was served,
// distinguishing a ready cache hit from a singleflight wait on a
// build another goroutine already has in flight. The span tracer
// uses the distinction to render waits as their own spans.
func (c *BuildCache) BuildObserved(name string, budget prog.RegBudget, scale Scale) (*prog.Program, BuildOutcome, error) {
	w, err := ByName(name)
	if err != nil {
		return nil, BuildOutcome{}, err
	}
	key := buildKey{name: name, budget: budget, scale: scale}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &buildEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	// Sampled before once.Do: false here plus a non-first return
	// below means this call blocked on an in-flight build.
	ready := e.done.Load()
	first := false
	e.once.Do(func() {
		first = true
		e.p, e.err = w.Build(budget, scale)
		e.done.Store(true)
	})
	var out BuildOutcome
	if first {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
		out.Hit = true
		out.Waited = !ready
	}
	return e.p, out, e.err
}

// Stats returns how many Build calls were served from the cache (hits)
// and how many performed the build (misses).
func (c *BuildCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
