package workload

import (
	"sync"
	"testing"

	"hbat/internal/prog"
)

func TestBuildCacheReusesPrograms(t *testing.T) {
	c := NewBuildCache()
	p1, err := c.Build("compress", prog.Budget32, ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Build("compress", prog.Budget32, ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("same key built twice")
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", h, m)
	}
	// Budget and scale are part of the key.
	p3, err := c.Build("compress", prog.Budget8, ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("different budget shared a program")
	}
	if h, m := c.Stats(); h != 1 || m != 2 {
		t.Errorf("stats = %d/%d after second key, want 1/2", h, m)
	}
}

func TestBuildCacheUnknownNameBypassesCache(t *testing.T) {
	c := NewBuildCache()
	if _, err := c.Build("nope", prog.Budget32, ScaleTest); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Errorf("unknown name touched the counters: %d/%d", h, m)
	}
}

// TestBuildCacheDeduplicatesConcurrentBuilds hammers one key from many
// goroutines: exactly one build must run, and everyone must get the
// same shared program (run with -race to check the synchronization).
func TestBuildCacheDeduplicatesConcurrentBuilds(t *testing.T) {
	c := NewBuildCache()
	const n = 16
	progs := make([]*prog.Program, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			p, err := c.Build("espresso", prog.Budget32, ScaleTest)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("goroutine %d got a different program", i)
		}
	}
	if h, m := c.Stats(); m != 1 || h != n-1 {
		t.Errorf("stats = %d hits / %d misses, want %d/1", h, m, n-1)
	}
}
