package workload

import (
	"testing"

	"hbat/internal/emu"
	"hbat/internal/prog"
	"hbat/internal/tlb"
)

// character captures the reference traits each synthetic workload is
// engineered to reproduce from the paper's Table 3 and Figure 6.
type character struct {
	loadFracLo, loadFracHi   float64 // loads / instructions
	storeFracLo, storeFracHi float64 // stores / instructions
}

// Bands are deliberately generous: the goal is that each program keeps
// its qualitative identity (memory-light vs memory-heavy, store-heavy,
// etc.), not a point match.
var characters = map[string]character{
	"compress":    {0.10, 0.35, 0.03, 0.20},
	"doduc":       {0.15, 0.40, 0.05, 0.25},
	"espresso":    {0.15, 0.40, 0.03, 0.25},
	"gcc":         {0.15, 0.45, 0.08, 0.30},
	"ghostscript": {0.01, 0.30, 0.08, 0.35},
	"mpeg_play":   {0.10, 0.35, 0.05, 0.30},
	"perl":        {0.15, 0.45, 0.05, 0.30},
	"tfft":        {0.10, 0.35, 0.05, 0.25},
	"tomcatv":     {0.15, 0.45, 0.03, 0.20},
	"xlisp":       {0.20, 0.45, 0.05, 0.25},
}

func TestWorkloadInstructionMix(t *testing.T) {
	for _, w := range All() {
		c, ok := characters[w.Name]
		if !ok {
			t.Fatalf("no character defined for %s", w.Name)
		}
		p, err := w.Build(prog.Budget32, ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		m, err := emu.New(p, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		lf := float64(m.LoadCount) / float64(m.InstCount)
		sf := float64(m.StoreCount) / float64(m.InstCount)
		if lf < c.loadFracLo || lf > c.loadFracHi {
			t.Errorf("%s: load fraction %.3f outside [%.2f, %.2f]", w.Name, lf, c.loadFracLo, c.loadFracHi)
		}
		if sf < c.storeFracLo || sf > c.storeFracHi {
			t.Errorf("%s: store fraction %.3f outside [%.2f, %.2f]", w.Name, sf, c.storeFracLo, c.storeFracHi)
		}
	}
}

// pageMissRate8 returns the workload's miss rate in an 8-entry LRU TLB
// (the Figure 6 locality fingerprint).
func pageMissRate8(t *testing.T, name string) float64 {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(prog.Budget32, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	m, err := emu.New(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	sim := tlb.NewMissRateSim(8, tlb.LRU, 1)
	bits := m.AS.PageBits()
	m.OnMemRef = func(vaddr uint64, _ bool) { sim.Ref(vaddr >> bits) }
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	return sim.MissRate()
}

// TestLowLocalityTrio asserts the paper's Figure 6 fingerprint: the
// compress/mpeg_play/tfft trio has notably worse small-TLB locality
// than each of the high-locality programs.
func TestLowLocalityTrio(t *testing.T) {
	if testing.Short() {
		t.Skip("uses ScaleSmall streams")
	}
	trio := map[string]float64{}
	for _, n := range []string{"compress", "mpeg_play", "tfft"} {
		trio[n] = pageMissRate8(t, n)
	}
	for _, good := range []string{"doduc", "tomcatv", "ghostscript", "espresso"} {
		g := pageMissRate8(t, good)
		for n, bad := range trio {
			if bad <= g {
				t.Errorf("%s (%.4f) should miss more than %s (%.4f) in an 8-entry TLB", n, bad, good, g)
			}
		}
	}
}

// TestDeterminism: identical builds are bit-identical (required for
// reproducible experiments).
func TestDeterminism(t *testing.T) {
	for _, w := range All() {
		p1, err := w.Build(prog.Budget32, ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := w.Build(prog.Budget32, ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		if len(p1.Code) != len(p2.Code) {
			t.Fatalf("%s: nondeterministic code length", w.Name)
		}
		for i := range p1.Code {
			if p1.Code[i] != p2.Code[i] {
				t.Fatalf("%s: instruction %d differs between builds", w.Name, i)
			}
		}
		if len(p1.Data) != len(p2.Data) {
			t.Fatalf("%s: nondeterministic data segments", w.Name)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("%d workloads", len(names))
	}
	if names[0] != "compress" || names[9] != "xlisp" {
		t.Fatalf("order wrong: %v", names)
	}
	for _, n := range names {
		if _, err := ByName(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ByName("quake"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
