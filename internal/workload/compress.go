package workload

import "hbat/internal/prog"

func init() {
	register(&Workload{
		Name: "compress",
		Model: "SPEC '92 compress: LZW compression; streaming input with " +
			"pseudo-random probes of a ~512 KB hash table, giving the poor " +
			"reference locality the paper highlights (Figure 6)",
		Build: buildCompress,
	})
}

// buildCompress models LZW compression: a byte stream is consumed
// sequentially while a rolling code hashes into a large table that is
// probed and updated. The streaming input has perfect spatial locality;
// the hash probes have almost none, which is what makes compress one of
// the paper's three low-locality programs.
func buildCompress(budget prog.RegBudget, scale Scale) (*prog.Program, error) {
	b := prog.NewBuilder("compress")

	inSize := scale.pick(3<<10, 24<<10, 72<<10)
	tabEntries := scale.pick(16<<10, 64<<10, 64<<10) // 8 bytes each

	inAddr := b.Alloc("input", uint64(inSize), 8)
	b.Alloc("htab", uint64(tabEntries*8), 8)
	b.Alloc("out", uint64(inSize*4), 8)
	b.Alloc("checksum", 8, 8)

	// Synthesize compressible input: runs of repeated bytes drawn from
	// a small alphabet so hash hits occur at a realistic rate.
	r := newRNG(0xc0357e55)
	in := make([]byte, inSize)
	for i := 0; i < inSize; {
		ch := byte('a' + r.intn(16))
		run := 1 + r.intn(6)
		for j := 0; j < run && i < inSize; j++ {
			in[i] = ch
			i++
		}
	}
	b.SetData(inAddr, in)

	pin := b.IVar("pin")
	pend := b.IVar("pend")
	ptab := b.IVar("ptab")
	pout := b.IVar("pout")
	mask := b.IVar("mask")
	code := b.IVar("code")
	ch := b.IVar("ch")
	ent := b.IVar("ent")
	t1 := b.IVar("t1")
	t2 := b.IVar("t2")
	sum := b.IVar("sum")

	b.La(pin, "input")
	b.Li(t1, int64(inSize))
	b.Add(pend, pin, t1)
	b.La(ptab, "htab")
	b.La(pout, "out")
	b.Li(mask, int64(tabEntries-1))
	b.Li(code, 0)
	b.Li(sum, 0)

	b.Label("loop")
	b.LbuPost(ch, pin, 1)
	// Rolling hash of (code, ch).
	b.Sll(t1, code, 4)
	b.Xor(t1, t1, ch)
	b.And(code, t1, mask)
	// Probe the table: ent = htab[code].
	b.Sll(t1, code, 3)
	b.Add(t1, ptab, t1)
	b.Ld(ent, t1, 0)
	b.Beq(ent, code, "found")
	// Miss: insert and emit the previous code.
	b.Sd(code, t1, 0)
	b.SwPost(code, pout, 4)
	b.Add(sum, sum, code)
	b.J("next")
	b.Label("found")
	// Hit: extend the current string (reuse the matched code).
	b.Add(code, code, ch)
	b.And(code, code, mask)
	b.Label("next")
	b.Bne(pin, pend, "loop")

	b.La(t2, "checksum")
	b.Sd(sum, t2, 0)
	b.Halt()
	return b.Finalize(budget)
}
