package workload

import "hbat/internal/prog"

func init() {
	register(&Workload{
		Name: "doduc",
		Model: "SPEC '92 doduc: Monte Carlo nuclear-reactor simulation; " +
			"long floating-point dependence chains with occasional divides " +
			"over a small data set, low memory traffic, ~87% predictable branches",
		Build: buildDoduc,
	})
}

// buildDoduc models doduc's character: dominantly floating-point work
// with serial dependence chains (polynomial/transcendental kernels),
// a compact working set that caches and translates well, and
// moderately predictable data-dependent branches.
func buildDoduc(budget prog.RegBudget, scale Scale) (*prog.Program, error) {
	b := prog.NewBuilder("doduc")

	// doduc's working set is small and heavily reused: the three arrays
	// together fit in the 32 KB L1 data cache.
	elems := scale.pick(512, 1024, 1024) // float64s per array
	iters := scale.pick(2, 18, 50)

	aAddr := b.Alloc("a", uint64(8*elems), 8)
	cAddr := b.Alloc("c", uint64(8*elems), 8)
	br := b.Alloc("branchdata", uint64(elems), 8)
	b.Alloc("out", uint64(8*elems), 8)
	b.Alloc("checksum", 8, 8)

	r := newRNG(0xd0d0c)
	av := make([]float64, elems)
	cv := make([]float64, elems)
	bd := make([]byte, elems)
	for i := range av {
		av[i] = 0.25 + r.float()
		cv[i] = 0.5 + r.float()*0.5
		if r.float() < 0.12 { // occasional divide iterations
			bd[i] = 1
		}
	}
	b.SetFloats(aAddr, av)
	b.SetFloats(cAddr, cv)
	b.SetData(br, bd)

	pa := b.IVar("pa")
	pc := b.IVar("pc")
	pb := b.IVar("pb")
	po := b.IVar("po")
	n := b.IVar("n")
	outer := b.IVar("outer")
	flag := b.IVar("flag")
	t := b.IVar("t")

	x := b.FVar("x")
	y := b.FVar("y")
	z := b.FVar("z")
	acc := b.FVar("acc")
	half := b.FVar("half")
	one := b.FVar("one")

	b.LiF(half, 0.5)
	b.LiF(one, 1.0)
	b.MovF(acc, one)
	b.Li(outer, int64(iters))

	b.Label("outer")
	b.La(pa, "a")
	b.La(pc, "c")
	b.La(pb, "branchdata")
	b.La(po, "out")
	b.Li(n, int64(elems))

	b.Label("loop")
	b.LdFPost(x, pa, 8)
	b.LdFPost(y, pc, 8)
	// Horner-style chain: z = ((x*y + 0.5)*x + y)*0.5
	b.MulF(z, x, y)
	b.AddF(z, z, half)
	b.MulF(z, z, x)
	b.AddF(z, z, y)
	b.MulF(z, z, half)
	b.LbuPost(flag, pb, 1)
	b.Bne(flag, prog.RegZero, "dodiv")
	b.AddF(z, z, x)
	b.MulF(z, z, half)
	b.J("accum")
	b.Label("dodiv")
	// Occasional reciprocal refinement with a real divide.
	b.DivF(z, one, z)
	b.AddF(z, z, half)
	b.Label("accum")
	b.AddF(acc, acc, z)
	b.StFPost(z, po, 8)
	b.Addi(n, n, -1)
	b.Bgtz(n, "loop")

	b.Addi(outer, outer, -1)
	b.Bgtz(outer, "outer")

	b.La(t, "checksum")
	b.StF(acc, t, 0)
	b.Halt()
	return b.Finalize(budget)
}
