package workload

import "hbat/internal/prog"

func init() {
	register(&Workload{
		Name: "espresso",
		Model: "SPEC '92 espresso: two-level logic minimization; wide " +
			"bit-set (cube) operations over a compact table with high ILP " +
			"and good locality (the paper's highest issue rate, 4.48 ops/cycle)",
		Build: buildEspresso,
	})
}

// buildEspresso models espresso's cube operations: rows of 64-bit words
// are intersected, unioned, and tested for emptiness with unrolled
// word-parallel loops. The working set is small and regular, so both
// cache and TLB behave essentially perfectly — espresso is one of the
// paper's high-IPC, high-locality programs.
func buildEspresso(budget prog.RegBudget, scale Scale) (*prog.Program, error) {
	b := prog.NewBuilder("espresso")

	const wordsPerCube = 16 // 128 bytes per cube
	cubes := scale.pick(64, 192, 256)
	passes := scale.pick(2, 8, 24)

	covA := b.Alloc("covA", uint64(8*wordsPerCube*cubes), 8)
	covB := b.Alloc("covB", uint64(8*wordsPerCube*cubes), 8)
	b.Alloc("covOut", uint64(8*wordsPerCube*cubes), 8)
	b.Alloc("checksum", 8, 8)

	r := newRNG(0xe59e550)
	wa := make([]uint64, wordsPerCube*cubes)
	wb := make([]uint64, wordsPerCube*cubes)
	for i := range wa {
		wa[i] = r.next() | r.next() // biased toward ones
		wb[i] = r.next() & r.next() // biased toward zeros
	}
	// ~30% of cubes are disjoint from their partner, so the non-empty
	// tally branch is data-dependent (espresso's rate is ~90%).
	for c := 0; c < cubes; c++ {
		if r.intn(10) < 3 {
			for w := 0; w < wordsPerCube; w++ {
				wb[c*wordsPerCube+w] = 0
			}
		}
	}
	b.SetWords(covA, wa)
	b.SetWords(covB, wb)

	pa := b.IVar("pa")
	pb := b.IVar("pb")
	po := b.IVar("po")
	cube := b.IVar("cube")
	w := b.IVar("w")
	va := b.IVar("va")
	vb := b.IVar("vb")
	vi := b.IVar("vi")
	vu := b.IVar("vu")
	nonEmpty := b.IVar("nonempty")
	pass := b.IVar("pass")
	count := b.IVar("count")
	t := b.IVar("t")

	b.Li(count, 0)
	b.Li(pass, int64(passes))
	b.Label("pass")
	b.La(pa, "covA")
	b.La(pb, "covB")
	b.La(po, "covOut")
	b.Li(cube, int64(cubes))

	b.Label("cube")
	b.Li(nonEmpty, 0)
	b.Li(w, wordsPerCube/2)
	b.Label("words")
	// Two-way unrolled: intersection to covOut, union feedback to covA.
	b.LdPost(va, pa, 8)
	b.LdPost(vb, pb, 8)
	b.And(vi, va, vb)
	b.Or(vu, va, vb)
	b.Or(nonEmpty, nonEmpty, vi)
	b.SdPost(vi, po, 8)
	b.Sd(vu, pa, -8)
	b.LdPost(va, pa, 8)
	b.LdPost(vb, pb, 8)
	b.And(vi, va, vb)
	b.Or(vu, va, vb)
	b.Or(nonEmpty, nonEmpty, vi)
	b.SdPost(vi, po, 8)
	b.Sd(vu, pa, -8)
	b.Addi(w, w, -1)
	b.Bgtz(w, "words")
	// Tally non-empty intersections (data-dependent, mostly taken).
	b.Beq(nonEmpty, prog.RegZero, "empty")
	b.Addi(count, count, 1)
	b.Label("empty")
	b.Addi(cube, cube, -1)
	b.Bgtz(cube, "cube")

	b.Addi(pass, pass, -1)
	b.Bgtz(pass, "pass")

	b.La(t, "checksum")
	b.Sd(count, t, 0)
	b.Halt()
	return b.Finalize(budget)
}
