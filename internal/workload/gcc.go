package workload

import (
	"encoding/binary"

	"hbat/internal/prog"
)

func init() {
	register(&Workload{
		Name: "gcc",
		Model: "SPEC '92 gcc (cc1): RTL manipulation; pointer-chasing over " +
			"heap-allocated insn nodes with type dispatch through a jump " +
			"table, a high store fraction, and the suite's worst branch " +
			"prediction (80.2%)",
		Build: buildGCC,
	})
}

// gccNodeBytes is the size of one synthetic RTL node: next pointer,
// kind, two operand words, and a scratch field the passes update.
const gccNodeBytes = 40

// buildGCC models cc1's insn-list walks: a linked list of nodes laid
// out with deliberately shuffled order (allocation churn), each visit
// dispatching on the node kind through a jump table and rewriting node
// fields. Irregular control plus pointer loads whose targets hop around
// a megabyte-scale arena give gcc its mediocre prediction and locality.
func buildGCC(budget prog.RegBudget, scale Scale) (*prog.Program, error) {
	b := prog.NewBuilder("gcc")

	nodes := scale.pick(2<<10, 8<<10, 11<<10)
	passes := scale.pick(2, 4, 8)

	arena := b.Alloc("arena", uint64(gccNodeBytes*nodes), 8)
	b.Alloc("checksum", 8, 8)

	// Build the node graph host-side: a permutation with a bounded
	// shuffle window, so successive nodes are usually nearby (arena
	// churn) but regularly jump far (freshly allocated subtrees).
	r := newRNG(0x9cc)
	order := make([]int, nodes)
	for i := range order {
		order[i] = i
	}
	const window = 512
	for i := range order {
		j := i + r.intn(window)
		if r.intn(16) == 0 {
			j = i + r.intn(nodes-i) // occasional long hop
		}
		if j >= nodes {
			j = nodes - 1
		}
		order[i], order[j] = order[j], order[i]
	}
	img := make([]byte, gccNodeBytes*nodes)
	prevKind := uint64(3)
	for i := 0; i < nodes; i++ {
		at := order[i] * gccNodeBytes
		next := uint64(0)
		if i+1 < nodes {
			next = arena + uint64(order[i+1]*gccNodeBytes)
		}
		// Kind distribution mirrors RTL: arithmetic and register
		// references dominate, calls and notes are rare, and similar
		// insns cluster (basic blocks), so the BTB predicts roughly
		// half the indirect dispatches — gcc's overall rate is ~80%.
		if r.intn(100) >= 55 { // 45% persistence
			kindDist := [...]uint64{3, 3, 3, 0, 0, 0, 0, 1, 1, 2, 2, 4, 5, 5, 6, 7}
			prevKind = kindDist[r.intn(len(kindDist))]
		}
		binary.LittleEndian.PutUint64(img[at+8:], prevKind)
		binary.LittleEndian.PutUint64(img[at:], next)
		binary.LittleEndian.PutUint64(img[at+16:], r.next()%1024) // op1
		binary.LittleEndian.PutUint64(img[at+24:], r.next()%1024) // op2
	}
	b.SetData(arena, img)
	head := arena + uint64(order[0]*gccNodeBytes)

	jt := b.JumpTable("kinds",
		"kReg", "kMem", "kConst", "kPlus", "kMult", "kJumpInsn", "kCall", "kNote")
	_ = jt

	p := b.IVar("p")
	kind := b.IVar("kind")
	op1 := b.IVar("op1")
	op2 := b.IVar("op2")
	acc := b.IVar("acc")
	tgt := b.IVar("tgt")
	pjt := b.IVar("pjt")
	pass := b.IVar("pass")
	t := b.IVar("t")

	b.Li(acc, 0)
	b.La(pjt, "kinds")
	b.Li(pass, int64(passes))

	b.Label("pass")
	b.Li(p, int64(head))

	b.Label("walk")
	b.Ld(kind, p, 8)
	b.Ld(op1, p, 16)
	b.Sll(tgt, kind, 3)
	b.LdX(tgt, pjt, tgt)
	b.Jr(tgt)

	// Kind handlers: each folds the node into acc and rewrites the
	// scratch field (gcc's high store fraction), then rejoins.
	b.Label("kReg")
	b.Add(acc, acc, op1)
	b.Sd(acc, p, 32)
	b.J("advance")
	b.Label("kMem")
	b.Ld(op2, p, 24)
	b.Add(acc, acc, op2)
	b.Sd(op2, p, 32)
	b.J("advance")
	b.Label("kConst")
	b.Xor(acc, acc, op1)
	b.Sd(op1, p, 32)
	b.J("advance")
	b.Label("kPlus")
	b.Ld(op2, p, 24)
	b.Add(op1, op1, op2)
	b.Sd(op1, p, 16)
	b.Add(acc, acc, op1)
	b.J("advance")
	b.Label("kMult")
	b.Ld(op2, p, 24)
	b.Mult(op1, op1, op2)
	b.Sd(op1, p, 32)
	b.Add(acc, acc, op1)
	b.J("advance")
	b.Label("kJumpInsn")
	b.Slti(op2, op1, 512) // data-dependent, poorly predicted
	b.Beq(op2, prog.RegZero, "jiSkip")
	b.Addi(acc, acc, 3)
	b.Label("jiSkip")
	b.Sd(acc, p, 32)
	b.J("advance")
	b.Label("kCall")
	b.Jal("leafFn")
	b.Sd(acc, p, 32)
	b.J("advance")
	b.Label("kNote")
	b.Sd(prog.RegZero, p, 32)

	b.Label("advance")
	b.Ld(p, p, 0)
	b.Bne(p, prog.RegZero, "walk")

	b.Addi(pass, pass, -1)
	b.Bgtz(pass, "pass")

	b.La(t, "checksum")
	b.Sd(acc, t, 0)
	b.Halt()

	// A tiny out-of-line callee (register save/restore traffic).
	b.Label("leafFn")
	b.Addi(acc, acc, 7)
	b.Ret()

	return b.Finalize(budget)
}
