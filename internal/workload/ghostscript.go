package workload

import "hbat/internal/prog"

func init() {
	register(&Workload{
		Name: "ghostscript",
		Model: "Ghostscript rendering a text+graphics page to PPM: span " +
			"fills streaming stores across a ~4 MB raster with small " +
			"path/font reads, highly predictable control (93.3%)",
		Build: buildGhostscript,
	})
}

// buildGhostscript models the rasterizer: for each span of each row, a
// color is computed from a small path table and written as a burst of
// word stores into a large frame buffer. Stores stream with strong
// spatial locality (ideal for piggybacking and pretranslation); the
// raster itself is large, so the TLB footprint is dominated by
// sequential page walks.
func buildGhostscript(budget prog.RegBudget, scale Scale) (*prog.Program, error) {
	b := prog.NewBuilder("ghostscript")

	rowWords := 256 // 2 KB per row
	rows := scale.pick(48, 384, 1024)
	spans := 8 // spans per row

	raster := b.Alloc("raster", uint64(8*rowWords*rows), 8)
	pathTab := b.Alloc("paths", uint64(8*spans*4), 8)
	pattern := b.Alloc("pattern", uint64(8*rowWords), 8)
	b.Alloc("checksum", 8, 8)
	_ = raster

	r := newRNG(0x905757)
	pt := make([]uint64, spans*4)
	for i := range pt {
		pt[i] = r.next() & 0x00ffffff
	}
	b.SetWords(pathTab, pt)
	hp := make([]uint64, rowWords)
	for i := range hp {
		hp[i] = r.next()
	}
	b.SetWords(pattern, hp)

	prow := b.IVar("prow")
	pp := b.IVar("pp")
	row := b.IVar("row")
	span := b.IVar("span")
	wleft := b.IVar("wleft")
	color := b.IVar("color")
	base := b.IVar("base")
	ppat := b.IVar("ppat")
	blend := b.IVar("blend")
	acc := b.IVar("acc")
	t := b.IVar("t")

	b.Li(acc, 0)
	b.La(prow, "raster")
	b.Li(row, int64(rows))

	b.Label("row")
	b.La(pp, "paths")
	b.La(ppat, "pattern")
	b.Li(span, int64(spans))

	b.Label("span")
	// Fetch span parameters and blend a color.
	b.LdPost(base, pp, 8)
	b.LdPost(blend, pp, 8)
	b.LdPost(color, pp, 8)
	b.LdPost(t, pp, 8)
	b.Xor(color, color, blend)
	b.Add(color, color, base)
	b.Add(acc, acc, color)
	// Fill rowWords/spans words with the color, four stores per
	// iteration at fixed offsets (the compiler's unrolled span fill):
	// all four issue in one cycle and hit the same page — the access
	// pattern piggybacking and pretranslation exploit.
	b.Li(wleft, int64(rowWords/spans/4))
	b.Label("fill")
	// Blend the halftone pattern into the color (one read plus a
	// little arithmetic per burst, like a real span blitter).
	b.Ld(t, ppat, 0)
	b.Addi(ppat, ppat, 8)
	b.Andi(t, t, 0x7fff)
	b.Xor(color, color, t)
	b.Sd(color, prow, 0)
	b.Sd(color, prow, 8)
	b.Sd(color, prow, 16)
	b.Sd(color, prow, 24)
	b.Addi(prow, prow, 32)
	b.Addi(color, color, 1) // dithering tweak keeps stores distinct
	b.Addi(wleft, wleft, -1)
	b.Bgtz(wleft, "fill")
	b.Addi(span, span, -1)
	b.Bgtz(span, "span")

	b.Addi(row, row, -1)
	b.Bgtz(row, "row")

	b.La(t, "checksum")
	b.Sd(acc, t, 0)
	b.Halt()
	return b.Finalize(budget)
}
