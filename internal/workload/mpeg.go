package workload

import "hbat/internal/prog"

func init() {
	register(&Workload{
		Name: "mpeg_play",
		Model: "mpeg_play decoding a 79-frame video: per-block IDCT-style " +
			"integer butterflies plus motion compensation that hops between " +
			"multi-megabyte reference and output frames — one of the paper's " +
			"three low-locality programs",
		Build: buildMPEG,
	})
}

// buildMPEG models the decoder's block loop: for each 8x8 block, an
// integer transform runs over a small block buffer, then motion
// compensation reads eight rows from a pseudo-random offset in the
// reference frame and writes eight rows into the output frame. The two
// frames together exceed what a 128-entry TLB maps, and block-to-block
// hops destroy page locality.
func buildMPEG(budget prog.RegBudget, scale Scale) (*prog.Program, error) {
	b := prog.NewBuilder("mpeg_play")

	frameBytes := scale.pick(256<<10, 512<<10, 768<<10)
	blocks := scale.pick(220, 1100, 3000)

	ref := b.Alloc("refframe", uint64(frameBytes), 8)
	out := b.Alloc("outframe", uint64(frameBytes), 8)
	mv := b.Alloc("mvecs", uint64(8*blocks), 8)
	blk := b.Alloc("block", 64*8, 8)
	b.Alloc("checksum", 8, 8)
	_ = out

	r := newRNG(0x3be9)
	// Reference frame content (sparse samples are enough; untouched
	// pages read as zero).
	refImg := make([]uint64, 4096)
	for i := range refImg {
		refImg[i] = r.next() & 0x00ff00ff00ff00ff
	}
	b.SetWords(ref, refImg)
	// Motion vectors: blocks decode in raster order, each referencing
	// the frame near its own position plus a small displacement (real
	// motion vectors span a few macroblocks, not the whole frame).
	// Successive blocks therefore stream through both frames while
	// still touching several distinct pages per block.
	mvs := make([]uint64, blocks)
	span := frameBytes - 32<<10
	for i := range mvs {
		pos := i * 1024 % span
		disp := r.intn(16 << 10) // up to ±16 KB of motion
		mvs[i] = uint64(pos+disp) &^ 7
	}
	b.SetWords(mv, mvs)
	coef := make([]uint64, 64)
	for i := range coef {
		coef[i] = uint64(r.intn(256))
	}
	b.SetWords(blk, coef)

	pmv := b.IVar("pmv")
	pblk := b.IVar("pblk")
	pref := b.IVar("pref")
	pout := b.IVar("pout")
	off := b.IVar("off")
	nblk := b.IVar("nblk")
	i := b.IVar("i")
	v0 := b.IVar("v0")
	v1 := b.IVar("v1")
	s := b.IVar("s")
	d := b.IVar("d")
	acc := b.IVar("acc")
	t := b.IVar("t")

	b.Li(acc, 0)
	b.La(pmv, "mvecs")
	b.Li(nblk, int64(blocks))

	b.Label("block")
	// --- integer transform over the block buffer (two passes) ---
	b.La(pblk, "block")
	b.Li(i, 32)
	b.Label("idct1")
	b.Ld(v0, pblk, 0)
	b.Ld(v1, pblk, 256) // paired row 32 entries away
	b.Add(s, v0, v1)
	b.Sub(d, v0, v1)
	b.Sra(d, d, 1)
	b.Sd(s, pblk, 0)
	b.Sd(d, pblk, 256)
	b.Addi(pblk, pblk, 8)
	b.Addi(i, i, -1)
	b.Bgtz(i, "idct1")

	// --- motion compensation: copy 8 rows ref -> out at the vector ---
	b.LdPost(off, pmv, 8)
	b.La(pref, "refframe")
	b.Add(pref, pref, off)
	b.La(pout, "outframe")
	b.Add(pout, pout, off)
	b.La(pblk, "block")
	b.Li(i, 8)
	b.Label("mc")
	b.LdPost(v0, pref, 128) // row stride through the reference frame
	b.LdPost(v1, pblk, 8)
	b.Add(v0, v0, v1)
	b.Add(acc, acc, v0)
	b.SdPost(v0, pout, 128)
	b.Addi(i, i, -1)
	b.Bgtz(i, "mc")

	b.Addi(nblk, nblk, -1)
	b.Bgtz(nblk, "block")

	b.La(t, "checksum")
	b.Sd(acc, t, 0)
	b.Halt()
	return b.Finalize(budget)
}
