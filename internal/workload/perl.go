package workload

import "hbat/internal/prog"

func init() {
	register(&Workload{
		Name: "perl",
		Model: "Perl running its test suite: a bytecode interpreter loop " +
			"with indirect dispatch, VM stack traffic, and hash-table " +
			"operations; high store fraction and weak prediction (81.2%)",
		Build: buildPerl,
	})
}

// Interpreter opcodes of the synthetic VM.
const (
	pOpPush = iota
	pOpAdd
	pOpDup
	pOpHashPut
	pOpHashGet
	pOpXor
	pOpDrop
	pOpSwap
	pNumOps
)

// buildPerl models an interpreter: a bytecode array drives an indirect
// jump per instruction (the BTB's nemesis), operands flow through a
// memory-resident VM stack, and two opcodes hash into a 256 KB table.
// The dispatch misprediction rate dominates control behaviour, and the
// store fraction is the suite's highest after xlisp.
func buildPerl(budget prog.RegBudget, scale Scale) (*prog.Program, error) {
	b := prog.NewBuilder("perl")

	codeLen := scale.pick(1200, 6000, 24000)
	passes := scale.pick(2, 4, 4)
	hashWords := 32 << 10 // 256 KB

	bc := b.Alloc("bytecode", uint64(codeLen), 8)
	b.Alloc("vmstack", 8*1024, 8)
	b.Alloc("hash", uint64(8*hashWords), 8)
	b.Alloc("checksum", 8, 8)

	// Generate bytecode with stack-depth tracking so the VM stack
	// never underflows: the depth is kept in [2, 64].
	r := newRNG(0x9e71)
	code := make([]byte, codeLen)
	depth := 0
	run := 0
	cur := pOpPush
	for i := range code {
		// Real bytecode repeats opcodes in short runs (argument pushes,
		// list ops), which is what lets the BTB predict a fraction of
		// the indirect dispatches; perl's overall rate is ~81%.
		if run == 0 {
			cur = r.intn(pNumOps)
			run = 1 + r.intn(4)
		}
		run--
		op := cur
		switch {
		case depth < 2:
			op = pOpPush
		case depth > 60:
			op = []int{pOpDrop, pOpAdd, pOpHashPut}[r.intn(3)]
		}
		switch op {
		case pOpPush, pOpDup, pOpHashGet:
			depth++
		case pOpAdd, pOpDrop, pOpHashPut:
			depth--
		}
		code[i] = byte(op)
	}
	b.SetData(bc, code)

	jt := b.JumpTable("dispatch",
		"opPush", "opAdd", "opDup", "opHashPut", "opHashGet", "opXor", "opDrop", "opSwap")
	_ = jt

	pc := b.IVar("pc")
	pend := b.IVar("pend")
	sp := b.IVar("vmsp") // VM stack pointer (memory-resident stack)
	ph := b.IVar("ph")
	pjt := b.IVar("pjt")
	op := b.IVar("op")
	a := b.IVar("a")
	c := b.IVar("c")
	hmask := b.IVar("hmask")
	pass := b.IVar("pass")
	seed := b.IVar("seed")
	t := b.IVar("t")

	b.La(ph, "hash")
	b.La(pjt, "dispatch")
	b.Li(hmask, int64(hashWords-1))
	b.Li(seed, 0x1234)
	b.Li(pass, int64(passes))

	b.Label("pass")
	b.La(pc, "bytecode")
	b.Li(t, int64(codeLen))
	b.Add(pend, pc, t)
	b.La(sp, "vmstack")

	b.Label("fetch")
	b.LbuPost(op, pc, 1)
	b.Sll(op, op, 3)
	b.LdX(op, pjt, op)
	b.Jr(op)

	b.Label("opPush")
	// Push a pseudo-random immediate.
	b.Sll(t, seed, 13)
	b.Xor(seed, seed, t)
	b.Srl(t, seed, 7)
	b.Xor(seed, seed, t)
	b.SdPost(seed, sp, 8)
	b.J("next")

	b.Label("opAdd")
	b.Addi(sp, sp, -8)
	b.Ld(a, sp, 0)
	b.Ld(c, sp, -8)
	b.Add(c, c, a)
	b.Sd(c, sp, -8)
	b.J("next")

	b.Label("opDup")
	b.Ld(a, sp, -8)
	b.SdPost(a, sp, 8)
	b.J("next")

	b.Label("opHashPut")
	b.Addi(sp, sp, -8)
	b.Ld(a, sp, 0)
	b.And(c, a, hmask)
	b.Sll(c, c, 3)
	b.Add(c, ph, c)
	b.Sd(a, c, 0)
	b.J("next")

	b.Label("opHashGet")
	b.Ld(a, sp, -8)
	b.And(c, a, hmask)
	b.Sll(c, c, 3)
	b.Add(c, ph, c)
	b.Ld(a, c, 0)
	b.SdPost(a, sp, 8)
	b.J("next")

	b.Label("opXor")
	b.Ld(a, sp, -8)
	b.Ld(c, sp, -16)
	b.Xor(a, a, c)
	b.Sd(a, sp, -8)
	b.J("next")

	b.Label("opDrop")
	b.Addi(sp, sp, -8)
	b.J("next")

	b.Label("opSwap")
	b.Ld(a, sp, -8)
	b.Ld(c, sp, -16)
	b.Sd(a, sp, -16)
	b.Sd(c, sp, -8)

	b.Label("next")
	b.Bne(pc, pend, "fetch")

	b.Addi(pass, pass, -1)
	b.Bgtz(pass, "pass")

	b.Ld(a, sp, -8)
	b.La(t, "checksum")
	b.Sd(a, t, 0)
	b.Halt()
	return b.Finalize(budget)
}
