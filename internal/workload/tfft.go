package workload

import (
	"math"

	"hbat/internal/prog"
)

func init() {
	register(&Workload{
		Name: "tfft",
		Model: "TFFT: real/complex FFTs over a randomly generated data set " +
			"(the paper's largest footprint, ~40 MB); bit-reversal and " +
			"large-stride butterfly passes give the worst TLB behaviour in " +
			"the suite",
		Build: buildTFFT,
	})
}

// buildTFFT models the FFT kernel: a bit-reversal permutation of an
// interleaved complex array followed by butterfly passes at
// geometrically growing strides, with twiddle factors loaded from a
// precomputed table. The permutation's scattered exchanges and the
// large-stride passes touch pages with almost no reuse — TFFT is the
// paper's canonical TLB-hostile program.
func buildTFFT(budget prog.RegBudget, scale Scale) (*prog.Program, error) {
	b := prog.NewBuilder("tfft")

	logN := uint(scale.pick(10, 13, 15))
	n := 1 << logN // complex elements; 16 bytes each

	data := b.Alloc("data", uint64(16*n), 8)
	revTab := b.Alloc("revtab", uint64(8*n), 8)
	twid := b.Alloc("twiddle", uint64(16*n/2), 8)
	plan := b.Alloc("passplan", 8*2*8+8, 8)
	b.Alloc("checksum", 8, 8)

	// Pass plan: which butterfly passes to run. Running every pass of
	// the transform would dwarf the rest of the suite, so the kernel
	// executes a representative subset — the first small-stride passes
	// plus the final large-stride pass (the TLB-hostile one) — chosen
	// host-side. Entries are (partner distance, twiddle step) in bytes,
	// zero-terminated.
	smallPasses := scale.pick(2, 2, 3)
	var planWords []uint64
	half0, step0 := uint64(16), uint64(n/2*16)
	for p := 0; p < smallPasses; p++ {
		planWords = append(planWords, half0, step0)
		half0 <<= 1
		step0 >>= 1
	}
	planWords = append(planWords, uint64(16*n/2), 16, 0)
	b.SetWords(plan, planWords)

	// Input samples and helper tables (host-side precomputation mirrors
	// TFFT's own table setup, which is not the measured kernel).
	r := newRNG(0x7FF7)
	samples := make([]float64, 2*n)
	for i := range samples {
		samples[i] = r.float()*2 - 1
	}
	b.SetFloats(data, samples)

	rev := make([]uint64, n)
	for i := 0; i < n; i++ {
		v := 0
		for bit := uint(0); bit < logN; bit++ {
			if i&(1<<bit) != 0 {
				v |= 1 << (logN - 1 - bit)
			}
		}
		rev[i] = uint64(v) * 16 // byte offset of the partner element
	}
	b.SetWords(revTab, rev)

	tw := make([]float64, n)
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		tw[2*k] = math.Cos(ang)
		tw[2*k+1] = math.Sin(ang)
	}
	b.SetFloats(twid, tw)

	pd := b.IVar("pd")
	prv := b.IVar("prv")
	ptw := b.IVar("ptw")
	i := b.IVar("i")
	j := b.IVar("j")
	half := b.IVar("half")
	stride := b.IVar("stride")
	pa := b.IVar("pa")
	pb := b.IVar("pb")
	grp := b.IVar("grp")
	tmp := b.IVar("tmp")
	twoff := b.IVar("twoff")
	twstep := b.IVar("twstep")

	ar := b.FVar("ar")
	ai := b.FVar("ai")
	br2 := b.FVar("br")
	bi := b.FVar("bi")
	wr := b.FVar("wr")
	wi := b.FVar("wi")
	tr := b.FVar("tr")
	ti := b.FVar("ti")
	u := b.FVar("u")

	// --- bit-reversal permutation (swap when partner > self) ---
	b.La(pd, "data")
	b.La(prv, "revtab")
	b.Li(i, 0)
	b.Label("bitrev")
	b.LdPost(j, prv, 8) // partner byte offset
	b.Sll(tmp, i, 4)    // own byte offset
	b.Sltu(grp, tmp, j)
	b.Beq(grp, prog.RegZero, "noswap")
	b.Add(pa, pd, tmp)
	b.Add(pb, pd, j)
	b.LdF(ar, pa, 0)
	b.LdF(ai, pa, 8)
	b.LdF(br2, pb, 0)
	b.LdF(bi, pb, 8)
	b.StF(br2, pa, 0)
	b.StF(bi, pa, 8)
	b.StF(ar, pb, 0)
	b.StF(ai, pb, 8)
	b.Label("noswap")
	b.Addi(i, i, 1)
	b.Li(tmp, int64(n))
	b.Bne(i, tmp, "bitrev")

	// --- butterfly passes from the host-computed plan ---
	pplan := b.IVar("pplan")
	b.La(pplan, "passplan")

	b.Label("pass")
	b.LdPost(half, pplan, 8)
	b.Beq(half, prog.RegZero, "fftdone")
	b.LdPost(twstep, pplan, 8)
	b.Sll(stride, half, 1) // group stride = 2*half
	b.La(pa, "data")
	b.Li(grp, 0)

	b.Label("group")
	b.Li(twoff, 0)
	b.Move(j, half)

	b.Label("bfly")
	b.Add(pb, pa, half)
	b.LdF(ar, pa, 0)
	b.LdF(ai, pa, 8)
	b.LdF(br2, pb, 0)
	b.LdF(bi, pb, 8)
	b.La(ptw, "twiddle")
	b.Add(ptw, ptw, twoff)
	b.LdF(wr, ptw, 0)
	b.LdF(wi, ptw, 8)
	// t = w * b (complex)
	b.MulF(tr, wr, br2)
	b.MulF(u, wi, bi)
	b.SubF(tr, tr, u)
	b.MulF(ti, wr, bi)
	b.MulF(u, wi, br2)
	b.AddF(ti, ti, u)
	// a' = a + t ; b' = a - t
	b.AddF(u, ar, tr)
	b.StF(u, pa, 0)
	b.AddF(u, ai, ti)
	b.StF(u, pa, 8)
	b.SubF(u, ar, tr)
	b.StF(u, pb, 0)
	b.SubF(u, ai, ti)
	b.StF(u, pb, 8)
	b.Add(twoff, twoff, twstep)
	b.Addi(pa, pa, 16)
	b.Addi(j, j, -16)
	b.Bgtz(j, "bfly")

	b.Add(pa, pa, half) // skip the partner half of this group
	b.Add(grp, grp, stride)
	b.Li(tmp, int64(16*n))
	b.Bne(grp, tmp, "group")

	b.J("pass")
	b.Label("fftdone")

	// Checksum: first element after the transform.
	b.La(pd, "data")
	b.LdF(ar, pd, 0)
	b.La(tmp, "checksum")
	b.StF(ar, tmp, 0)
	b.Halt()
	return b.Finalize(budget)
}
