package workload

import "hbat/internal/prog"

func init() {
	register(&Workload{
		Name: "tomcatv",
		Model: "SPEC '92 tomcatv (N=129): vectorized mesh generation; " +
			"row-wise stencil sweeps over 2-D float64 arrays with strong " +
			"spatial locality and near-perfect inner-loop prediction",
		Build: buildTomcatv,
	})
}

// buildTomcatv models the mesh-generation sweeps: five-point stencils
// read neighboring rows of 129-wide float64 arrays and write residual
// arrays, streaming row by row. Locality is excellent at both cache and
// page granularity, and the loop bounds make branches nearly free.
func buildTomcatv(budget prog.RegBudget, scale Scale) (*prog.Program, error) {
	b := prog.NewBuilder("tomcatv")

	const nCols = 129
	rowBytes := int64(8 * nCols)
	nRows := scale.pick(33, 129, 129)
	sweeps := scale.pick(1, 2, 6)

	xA := b.Alloc("X", uint64(rowBytes)*uint64(nRows), 8)
	yA := b.Alloc("Y", uint64(rowBytes)*uint64(nRows), 8)
	b.Alloc("RX", uint64(rowBytes)*uint64(nRows), 8)
	b.Alloc("RY", uint64(rowBytes)*uint64(nRows), 8)
	b.Alloc("checksum", 8, 8)

	r := newRNG(0x70 << 4)
	grid := make([]float64, nCols*nRows)
	for i := range grid {
		grid[i] = r.float()
	}
	b.SetFloats(xA, grid)
	for i := range grid {
		grid[i] = r.float() * 0.5
	}
	b.SetFloats(yA, grid)

	px := b.IVar("px")
	py := b.IVar("py")
	prx := b.IVar("prx")
	pry := b.IVar("pry")
	row := b.IVar("row")
	col := b.IVar("col")
	sweep := b.IVar("sweep")
	t := b.IVar("t")

	xc := b.FVar("xc")
	xw := b.FVar("xw")
	xe := b.FVar("xe")
	xn := b.FVar("xn")
	xs := b.FVar("xs")
	yc := b.FVar("yc")
	rx := b.FVar("rx")
	ry := b.FVar("ry")
	qtr := b.FVar("qtr")
	acc := b.FVar("acc")

	b.LiF(qtr, 0.25)
	b.LiF(acc, 0.0)
	b.Li(sweep, int64(sweeps))

	b.Label("sweep")
	// Interior rows 1..nRows-2; pointers start at row 1, column 1.
	b.La(px, "X")
	b.La(py, "Y")
	b.La(prx, "RX")
	b.La(pry, "RY")
	b.Addi(px, px, int32(rowBytes+8))
	b.Addi(py, py, int32(rowBytes+8))
	b.Addi(prx, prx, int32(rowBytes+8))
	b.Addi(pry, pry, int32(rowBytes+8))
	b.Li(row, int64(nRows-2))

	b.Label("row")
	b.Li(col, nCols-2)
	b.Label("col")
	// Five-point stencil on X, plus the Y center point.
	b.LdF(xc, px, 0)
	b.LdF(xw, px, -8)
	b.LdF(xe, px, 8)
	b.LdF(xn, px, int32(-rowBytes))
	b.LdF(xs, px, int32(rowBytes))
	b.LdF(yc, py, 0)
	b.AddF(rx, xw, xe)
	b.AddF(rx, rx, xn)
	b.AddF(rx, rx, xs)
	b.MulF(rx, rx, qtr)
	b.SubF(rx, rx, xc)
	b.MulF(ry, rx, yc)
	b.AddF(acc, acc, rx)
	b.StFPost(rx, prx, 8)
	b.StFPost(ry, pry, 8)
	b.Addi(px, px, 8)
	b.Addi(py, py, 8)
	b.Addi(col, col, -1)
	b.Bgtz(col, "col")
	// Advance past the border columns to the next row's column 1.
	b.Addi(px, px, 16)
	b.Addi(py, py, 16)
	b.Addi(prx, prx, 16)
	b.Addi(pry, pry, 16)
	b.Addi(row, row, -1)
	b.Bgtz(row, "row")

	b.Addi(sweep, sweep, -1)
	b.Bgtz(sweep, "sweep")

	b.La(t, "checksum")
	b.StF(acc, t, 0)
	b.Halt()
	return b.Finalize(budget)
}
