// Package workload provides synthetic versions of the ten benchmarks of
// Austin & Sohi's evaluation (Section 4.2): compress, doduc, espresso,
// gcc, ghostscript, mpeg_play, perl, tfft, tomcatv, and xlisp. The
// original binaries (SPEC '92 plus five others, compiled with GCC 2.6.2
// for the paper's extended MIPS architecture) are not obtainable, so
// each generator reproduces its model program's memory-reference
// character — data-set size, reference locality (Figure 6's miss-rate
// spread), instruction mix, branch behaviour, and register-pointer
// reuse — on the same virtual ISA. See DESIGN.md for the substitution
// argument.
package workload

import (
	"fmt"
	"sort"

	"hbat/internal/prog"
)

// Scale selects how much work a build does. Reference quantities are
// scaled so the full experiment grid runs in minutes; all reported
// statistics are rates, which stabilize quickly.
type Scale int

const (
	// ScaleTest is for unit tests: ~10-40k committed instructions.
	ScaleTest Scale = iota
	// ScaleSmall is for quick experiments: ~100-300k instructions.
	ScaleSmall
	// ScaleFull is for the headline experiments: ~0.5-1.5M instructions.
	ScaleFull
)

func (s Scale) String() string {
	switch s {
	case ScaleTest:
		return "test"
	case ScaleSmall:
		return "small"
	case ScaleFull:
		return "full"
	}
	return "scale(?)"
}

// pick returns the value for the current scale.
func (s Scale) pick(test, small, full int) int {
	switch s {
	case ScaleTest:
		return test
	case ScaleSmall:
		return small
	default:
		return full
	}
}

// Workload is one synthetic benchmark.
type Workload struct {
	// Name is the benchmark's name (lower case, as in Table 3).
	Name string
	// Model names the original program being modeled and its traits.
	Model string
	// Build generates the program for a register budget and scale.
	Build func(budget prog.RegBudget, scale Scale) (*prog.Program, error)
}

// registry of all workloads, populated by init functions in each
// workload's file.
var registry = map[string]*Workload{}

func register(w *Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("workload: duplicate " + w.Name)
	}
	registry[w.Name] = w
}

// All returns every workload in Table 3 order.
func All() []*Workload {
	names := Names()
	out := make([]*Workload, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// table3Order lists the paper's benchmarks in Table 3 order.
var table3Order = []string{
	"compress", "doduc", "espresso", "gcc", "ghostscript",
	"mpeg_play", "perl", "tfft", "tomcatv", "xlisp",
}

// Names returns the workload names in Table 3 order; workloads
// registered beyond the paper's ten (none today) follow alphabetically.
func Names() []string {
	order := append([]string(nil), table3Order...)
	known := make(map[string]bool, len(order))
	for _, n := range order {
		known[n] = true
	}
	var extra []string
	for name := range registry {
		if !known[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	return append(order, extra...)
}

// ByName returns the named workload.
func ByName(name string) (*Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown %q (known: %v)", name, Names())
	}
	return w, nil
}

// rng is a deterministic xorshift64* generator used to synthesize
// input data (compressed streams, FFT samples, hash keys, ...).
type rng uint64

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x853c49e6748fea9b
	}
	r := rng(seed)
	return &r
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545f4914f6cdd1d
}

// intn returns a pseudo-random value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// float returns a pseudo-random float64 in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }
