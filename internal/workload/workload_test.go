package workload

import (
	"testing"

	"hbat/internal/emu"
	"hbat/internal/prog"
)

// TestAllWorkloadsRunToCompletion functionally executes every workload
// at test scale under both register budgets and checks that it halts
// within a sane instruction budget.
func TestAllWorkloadsRunToCompletion(t *testing.T) {
	for _, w := range All() {
		for _, budget := range []prog.RegBudget{prog.Budget32, prog.Budget8} {
			t.Run(w.Name+"/"+budget.String(), func(t *testing.T) {
				p, err := w.Build(budget, ScaleTest)
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				m, err := emu.New(p, 4096)
				if err != nil {
					t.Fatalf("emu.New: %v", err)
				}
				if err := m.Run(40_000_000); err != nil {
					t.Fatalf("Run: %v", err)
				}
				t.Logf("insts=%d loads=%d (%.1f%%) stores=%d (%.1f%%) branches=%d spills=%d",
					m.InstCount, m.LoadCount,
					100*float64(m.LoadCount)/float64(m.InstCount),
					m.StoreCount,
					100*float64(m.StoreCount)/float64(m.InstCount),
					m.BranchCount, p.SpillSlots)
			})
		}
	}
}

// TestFewerRegistersIncreasesMemoryTraffic checks the paper's Figure 9
// premise: recompiling with 8 int / 8 fp registers sharply increases
// loads and stores for every workload.
func TestFewerRegistersIncreasesMemoryTraffic(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			p32, err := w.Build(prog.Budget32, ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			p8, err := w.Build(prog.Budget8, ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			if p8.SpillSlots == 0 {
				t.Fatalf("no spill slots under Budget8")
			}
			m32, _ := emu.New(p32, 4096)
			m8, _ := emu.New(p8, 4096)
			if err := m32.Run(40_000_000); err != nil {
				t.Fatal(err)
			}
			if err := m8.Run(80_000_000); err != nil {
				t.Fatal(err)
			}
			r32 := m32.LoadCount + m32.StoreCount
			r8 := m8.LoadCount + m8.StoreCount
			if r8 <= r32 {
				t.Errorf("Budget8 refs %d not above Budget32 refs %d", r8, r32)
			}
			t.Logf("refs: 32-reg %d, 8-reg %d (+%.0f%%)", r32, r8, 100*float64(r8-r32)/float64(r32))
		})
	}
}
