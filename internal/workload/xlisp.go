package workload

import (
	"encoding/binary"

	"hbat/internal/prog"
)

func init() {
	register(&Workload{
		Name: "xlisp",
		Model: "SPEC '92 xlisp (li) interpreting li-input.lsp: cons-cell " +
			"pointer chasing, list construction, and a mark-phase sweep; " +
			"the suite's highest memory traffic (1.86 issued refs/cycle)",
		Build: buildXlisp,
	})
}

// xlispCellBytes is one cons cell: car, cdr, and a mark/tag word.
const xlispCellBytes = 24

// buildXlisp models the interpreter's heap behaviour: lists whose cells
// were allocated with churn (so cdr chains hop around a megabyte-scale
// heap), an evaluation walk that chases car/cdr with data-dependent
// branching, and a garbage-collector mark pass that rewrites the tag
// word of every live cell — read-modify-write stores at high density.
func buildXlisp(budget prog.RegBudget, scale Scale) (*prog.Program, error) {
	b := prog.NewBuilder("xlisp")

	cells := scale.pick(2<<10, 16<<10, 40<<10)
	evals := scale.pick(2, 3, 5)

	heap := b.Alloc("heap", uint64(xlispCellBytes*cells), 8)
	b.Alloc("checksum", 8, 8)

	// Build several interleaved lists with allocation churn: cell i of
	// list k is placed with a bounded shuffle, cdr pointing to the next
	// cell of the same list, car holding a small integer or (for ~20%)
	// a pointer into another list (shared structure).
	r := newRNG(0x115b)
	order := make([]int, cells)
	for i := range order {
		order[i] = i
	}
	for i := range order {
		j := i + r.intn(256)
		if j >= cells {
			j = cells - 1
		}
		order[i], order[j] = order[j], order[i]
	}
	const nLists = 4
	img := make([]byte, xlispCellBytes*cells)
	heads := make([]uint64, nLists)
	perList := cells / nLists
	cellAddr := func(i int) uint64 { return heap + uint64(order[i]*xlispCellBytes) }
	for k := 0; k < nLists; k++ {
		base := k * perList
		heads[k] = cellAddr(base)
		for i := 0; i < perList; i++ {
			at := order[base+i] * xlispCellBytes
			car := uint64(r.intn(1024))<<1 | 1 // tagged fixnum
			if r.intn(5) == 0 && i > 0 {
				car = cellAddr(base + r.intn(i)) // pointer into this list
			}
			cdr := uint64(0)
			if i+1 < perList {
				cdr = cellAddr(base + i + 1)
			}
			binary.LittleEndian.PutUint64(img[at:], car)
			binary.LittleEndian.PutUint64(img[at+8:], cdr)
		}
	}
	b.SetData(heap, img)
	roots := b.Alloc("roots", uint64(8*nLists), 8)
	b.SetWords(roots, heads)

	p := b.IVar("p")
	car := b.IVar("car")
	acc := b.IVar("acc")
	mark := b.IVar("mark")
	proot := b.IVar("proot")
	lst := b.IVar("lst")
	ev := b.IVar("ev")
	tag := b.IVar("tag")
	t := b.IVar("t")

	b.Li(acc, 0)
	b.Li(mark, 1)
	b.Li(ev, int64(evals))

	b.Label("eval")
	b.La(proot, "roots")
	b.Li(lst, nLists)

	b.Label("list")
	b.LdPost(p, proot, 8)

	b.Label("walk")
	b.Ld(car, p, 0)
	// Tagged fixnum or pointer? (low bit set = fixnum)
	b.Andi(tag, car, 1)
	b.Beq(tag, prog.RegZero, "isptr")
	b.Sra(car, car, 1)
	b.Add(acc, acc, car)
	b.J("markcell")
	b.Label("isptr")
	// Shared structure: peek one level into the referenced cell.
	b.Ld(t, car, 0)
	b.Xor(acc, acc, t)
	b.Label("markcell")
	// GC-style mark: read-modify-write of the tag word.
	b.Ld(tag, p, 16)
	b.Add(tag, tag, mark)
	b.Sd(tag, p, 16)
	b.Ld(p, p, 8) // cdr
	b.Bne(p, prog.RegZero, "walk")

	b.Addi(lst, lst, -1)
	b.Bgtz(lst, "list")

	b.Addi(ev, ev, -1)
	b.Bgtz(ev, "eval")

	b.La(t, "checksum")
	b.Sd(acc, t, 0)
	b.Halt()
	return b.Finalize(budget)
}
