package main

import (
	"fmt"
	"os"
	"path/filepath"

	"hbat/internal/ckpt"
	"hbat/internal/mem"
	"hbat/internal/vm"
)

func write(dir, name string, data []byte) {
	content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		panic(err)
	}
}

func main() {
	dir := "internal/ckpt/testdata/fuzz/FuzzCheckpointRoundTrip"
	// A minimal synthetic checkpoint: one page, one frame, no warmed
	// arrays — small enough to keep in the repo, rich enough to reach
	// every section of the decoder.
	c := &ckpt.Checkpoint{
		PageSize:    4096,
		FastForward: 7,
		PC:          0x1000,
		InstCount:   7,
		Pages:       []vm.PTE{{VPN: 1, PFN: 1, Perm: vm.PermRW, Ref: true}},
		NextFrame:   2,
		Frames:      []mem.FrameImage{{Index: 1}},
	}
	c.Frames[0].Data[0] = 0xAB
	c.Regs[3] = 42
	valid := c.Encode()
	write(dir, "seed_minimal_valid", valid)
	// Pre-mutated shapes: the typed-error paths.
	write(dir, "seed_empty", nil)
	write(dir, "seed_magic_only", []byte(ckpt.Magic))
	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'Z'
	write(dir, "seed_bad_magic", badMagic)
	flipped := append([]byte(nil), valid...)
	flipped[20] ^= 0xFF
	write(dir, "seed_bit_flip", flipped)
	write(dir, "seed_truncated", valid[:len(valid)-9])
	fmt.Println("corpus written:", len(valid), "byte valid seed")
}
