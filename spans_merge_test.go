package hbat

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"hbat/internal/harness"
	"hbat/internal/prog"
	"hbat/internal/ptrace"
	"hbat/internal/workload"
)

// TestMergedSpanTimeline runs a small sweep — one run carrying a micro
// pipeline trace — through an engine with span tracing on, exports the
// merged Perfetto document, and checks the contract the timeline
// stands on: macro phase spans live on pid 0 in wall microseconds,
// each attached micro trace gets its own process pair at pid >= 1000,
// and micro events are time-shifted so none precedes its anchoring
// simulate span.
func TestMergedSpanTimeline(t *testing.T) {
	tr := NewSpanTracer()
	eng := harness.NewEngine(harness.WithSpans(tr))

	specs := []harness.RunSpec{
		{
			Workload: "compress", Design: "I4", Budget: prog.Budget32,
			Scale: workload.ScaleTest, PageSize: 4096, Seed: 1,
			Trace: &ptrace.Config{Cap: 1 << 16},
		},
		{
			Workload: "espresso", Design: "T4", Budget: prog.Budget32,
			Scale: workload.ScaleTest, PageSize: 4096, Seed: 1,
		},
	}
	results, err := eng.RunAll(context.Background(), specs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if results[0].Trace == nil {
		t.Fatal("traced spec captured no micro trace")
	}

	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged export is not valid JSON: %v", err)
	}

	macroNames := map[string]int{}
	var microEvents, microPids int
	microMinTS := 1e18
	var simulateTS []float64
	pidsSeen := map[int]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		switch {
		case e.Pid == 0:
			if e.Ph == "X" {
				macroNames[e.Name]++
				if e.Name == "simulate" {
					simulateTS = append(simulateTS, e.Ts)
				}
			}
		case e.Pid >= 1000:
			microEvents++
			if !pidsSeen[e.Pid] {
				pidsSeen[e.Pid] = true
				microPids++
			}
			if e.Ts < microMinTS {
				microMinTS = e.Ts
			}
		default:
			t.Fatalf("event on unexpected pid %d: %+v", e.Pid, e)
		}
	}
	// The macro layer carries the whole span taxonomy of this sweep.
	for _, want := range []string{"sweep", "sched_gap", "run", "program_build", "simulate"} {
		if macroNames[want] == 0 {
			t.Errorf("no macro %q spans (have %v)", want, macroNames)
		}
	}
	if macroNames["run"] != 2 || macroNames["simulate"] != 2 {
		t.Errorf("macro span counts = %v, want 2 runs with 2 simulates", macroNames)
	}
	if microEvents == 0 || microPids < 2 {
		t.Fatalf("micro layer: %d events on %d pids, want events on a pipeline+memory process pair", microEvents, microPids)
	}
	// One traced run: exactly its simulate span anchors the micro
	// events; the shift must place them all at or after some simulate
	// span's start.
	anchored := false
	for _, ts := range simulateTS {
		if microMinTS >= ts {
			anchored = true
		}
	}
	if !anchored {
		t.Errorf("earliest micro event at ts %v precedes every simulate span (%v)", microMinTS, simulateTS)
	}
	// Micro process metadata carries the ptrace track names so the
	// merged file reads like the standalone export.
	out := buf.String()
	for _, want := range []string{"pipeline (1 cycle = 1 µs)", "translation+memory", "sweep (macro, wall µs)"} {
		if !strings.Contains(out, want) {
			t.Errorf("merged export missing %q process label", want)
		}
	}
}

// TestFacadeSpanTracerAccessors checks the package-level span wiring:
// attach, observe through the shared engine, detach.
func TestFacadeSpanTracerAccessors(t *testing.T) {
	if Spans() != nil {
		t.Fatal("shared engine has a tracer before attach")
	}
	tr := NewSpanTracer()
	SetSpanTracer(tr)
	defer SetSpanTracer(nil)
	if Spans() != tr {
		t.Fatal("Spans() did not return the attached tracer")
	}
	if err := RunExperiment(context.Background(), "table2", ExperimentOptions{CommonOptions: CommonOptions{Scale: "test"}}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	by := map[string]int{}
	for _, d := range tr.Spans() {
		by[d.Name]++
	}
	if by["render"] == 0 {
		t.Errorf("experiment left no render span (have %v)", by)
	}
}
