package hbat

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// perfettoEvent is the subset of the Chrome trace-event schema the
// exporter produces; unmarshalling into it validates the JSON shape.
type perfettoEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Args json.RawMessage `json:"args"`
}

// TestPerfettoTraceValidates runs a bundled workload under the
// interleaved-4 TLB, exports the Perfetto trace, and checks it is valid
// trace-event JSON with named tracks, duration slices, and at least one
// TLB-miss instant — i.e. a file ui.perfetto.dev will actually open.
func TestPerfettoTraceValidates(t *testing.T) {
	res, err := Simulate(context.Background(), Options{
		Workload:      "compress",
		Design:        "I4",
		CommonOptions: CommonOptions{Scale: "test"},
		Trace:         &TraceOptions{Buffer: 1 << 19},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace captured")
	}
	var buf bytes.Buffer
	if err := res.Trace.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []perfettoEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}

	var spans, instants, tlbMisses int
	tracks := map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			var meta struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(e.Args, &meta); err == nil && meta.Name != "" {
				tracks[meta.Name] = true
			}
		case "X":
			spans++
			if e.Dur <= 0 {
				t.Fatalf("span %q has non-positive duration %v", e.Name, e.Dur)
			}
		case "i":
			instants++
			if e.Name == "tlb_miss" {
				tlbMisses++
			}
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	if spans == 0 {
		t.Error("no duration (ph=X) slices exported")
	}
	if instants == 0 {
		t.Error("no instant (ph=i) events exported")
	}
	if tlbMisses == 0 {
		t.Error("trace shows no TLB-miss instants; the I4 run must miss at least once")
	}
	for _, want := range []string{"fetch", "dispatch", "execute", "commit", "tlb", "dcache"} {
		if !tracks[want] {
			t.Errorf("no %q track metadata (have %v)", want, tracks)
		}
	}
}

// TestTraceSummaryRenders checks the facade end of the text report.
func TestTraceSummaryRenders(t *testing.T) {
	res, err := Simulate(context.Background(), Options{
		Workload:      "compress",
		Design:        "I4",
		CommonOptions: CommonOptions{Scale: "test"},
		Trace:         &TraceOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteSummary(&buf, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pipeline trace summary", "event census", "top stall causes", "longest-latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestIntervalCSVThroughFacade checks Options.IntervalEvery produces a
// CSV time series with the documented columns.
func TestIntervalCSVThroughFacade(t *testing.T) {
	res, err := Simulate(context.Background(), Options{
		Workload:      "compress",
		Design:        "T4",
		CommonOptions: CommonOptions{Scale: "test"},
		IntervalEvery: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals == nil {
		t.Fatal("no interval series")
	}
	var buf bytes.Buffer
	if err := res.Intervals.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "cycle,ipc,tlb.miss_rate,rob.occupancy,tlb.port_queue_depth" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) < 3 {
		t.Errorf("only %d CSV lines for a multi-thousand-cycle run", len(lines))
	}
}
